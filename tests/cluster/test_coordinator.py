"""Coordinator behaviour against a scripted in-test worker.

No real simulation here: a plain socket client plays the worker role,
which makes join/lease/loss timing fully deterministic — the lease
clock is injected, so expiry is a variable assignment, not a sleep.
"""

import socket
import time

import pytest

from repro.cluster.coordinator import Coordinator
from repro.cluster.protocol import FrameReader, recv_frame, send_frame
from repro.obs import ProbeBus, use_probes


class FakeWorker:
    """The worker side of the handshake, driven explicitly by a test."""

    def __init__(self, address, pid=999):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(address)
        self.reader = FrameReader()
        send_frame(self.sock, {"type": "hello", "pid": pid, "host": "test"})

    def recv(self):
        return recv_frame(self.sock, self.reader)

    def send(self, frame):
        send_frame(self.sock, frame)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def clock():
    state = {"now": 0.0}

    def read():
        return state["now"]

    read.advance = lambda dt: state.__setitem__("now", state["now"] + dt)
    return read


@pytest.fixture
def coordinator(tmp_path, clock):
    coord = Coordinator(str(tmp_path / "c.sock"), heartbeat_s=0.2,
                        clock=clock)
    coord.start()
    yield coord
    coord.close()


def pump(coordinator, *, until=None, tries=50):
    """Poll until a predicate on the accumulated events holds."""
    events = []
    for _ in range(tries):
        events.extend(coordinator.poll(0.05))
        if until is None or until(events):
            return events
    raise AssertionError(f"condition never held; events={events}")


class TestHandshake:
    def test_worker_joins_and_goes_idle(self, coordinator):
        worker = FakeWorker(coordinator.address)
        events = pump(coordinator, until=lambda e: e)
        (kind, worker_id) = events[0]
        assert kind == "joined"
        welcome = worker.recv()
        assert welcome["type"] == "welcome"
        assert welcome["worker_id"] == worker_id
        assert welcome["heartbeat_s"] == pytest.approx(0.2)
        assert coordinator.idle_workers() == [worker_id]
        assert coordinator.worker_count() == 1
        worker.close()

    def test_unjoined_disconnect_emits_no_lost_event(self, coordinator):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(coordinator.address)
        sock.close()
        for _ in range(10):
            events = coordinator.poll(0.02)
            assert all(e[0] != "lost" for e in events)
        assert coordinator.worker_count() == 0


class TestLeases:
    def _join(self, coordinator):
        worker = FakeWorker(coordinator.address)
        events = pump(coordinator, until=lambda e: e)
        worker.recv()  # welcome
        return worker, events[0][1]

    def test_result_round_trip(self, coordinator):
        worker, worker_id = self._join(coordinator)
        assert coordinator.send_job(
            worker_id, {"type": "job", "task": "t1"})
        assert coordinator.idle_workers() == []  # leased
        job = worker.recv()
        assert job == {"type": "job", "task": "t1"}
        worker.send({"type": "result", "task": "t1", "payload": "p"})
        events = pump(coordinator, until=lambda e: any(
            ev[0] == "result" for ev in e))
        (_, wid, task, frame) = [e for e in events
                                 if e[0] == "result"][0]
        assert (wid, task) == (worker_id, "t1")
        assert frame["payload"] == "p"
        assert coordinator.idle_workers() == [worker_id]
        worker.close()

    def test_error_frame_keeps_the_worker(self, coordinator):
        worker, worker_id = self._join(coordinator)
        coordinator.send_job(worker_id, {"type": "job", "task": "t2"})
        worker.recv()
        worker.send({"type": "error", "task": "t2",
                     "error_type": "ValueError", "error": "boom"})
        events = pump(coordinator, until=lambda e: any(
            ev[0] == "error" for ev in e))
        (_, wid, task, error_type, message) = [
            e for e in events if e[0] == "error"][0]
        assert (wid, task) == (worker_id, "t2")
        assert (error_type, message) == ("ValueError", "boom")
        assert coordinator.worker_count() == 1

    def test_eof_mid_task_surfaces_lost_with_the_task(self, coordinator):
        bus = ProbeBus()
        with use_probes(bus):
            worker, worker_id = self._join(coordinator)
            coordinator.send_job(worker_id, {"type": "job", "task": "t3"})
            worker.recv()
            worker.close()  # SIGKILL as seen from the socket
            events = pump(coordinator, until=lambda e: any(
                ev[0] == "lost" for ev in e))
        assert ("lost", worker_id, "t3") in events
        assert coordinator.worker_count() == 0
        assert bus.snapshot()["counters"]["cluster.worker_lost"] == 1

    def test_silent_worker_loses_its_lease(self, coordinator, clock):
        bus = ProbeBus()
        with use_probes(bus):
            worker, worker_id = self._join(coordinator)
            coordinator.send_job(worker_id, {"type": "job", "task": "t4"})
            worker.recv()
            # no heartbeat, no result: cross the lease horizon
            clock.advance(coordinator.lease_timeout_s + 0.1)
            events = pump(coordinator, until=lambda e: any(
                ev[0] == "lost" for ev in e))
        assert ("lost", worker_id, "t4") in events
        counters = bus.snapshot()["counters"]
        assert counters["cluster.lease_expiries"] == 1
        assert counters["cluster.worker_lost"] == 1
        worker.close()

    def test_heartbeat_renews_the_lease(self, coordinator, clock):
        worker, worker_id = self._join(coordinator)
        handle = coordinator._workers[worker_id]
        for _ in range(3):
            clock.advance(coordinator.lease_timeout_s * 0.9)
            beat_before = handle.last_beat
            worker.send({"type": "heartbeat"})
            deadline = time.monotonic() + 2.0
            while (handle.last_beat <= beat_before
                   and time.monotonic() < deadline):
                events = coordinator.poll(0.02)
                assert all(e[0] != "lost" for e in events)
            assert handle.last_beat > beat_before
        assert coordinator.worker_count() == 1
        worker.close()

    def test_drop_worker_is_silent(self, coordinator):
        worker, worker_id = self._join(coordinator)
        coordinator.drop_worker(worker_id)
        assert coordinator.worker_count() == 0
        for _ in range(5):
            assert all(e[0] != "lost" for e in coordinator.poll(0.02))
        worker.close()

    def test_send_job_to_dead_socket_returns_false(self, coordinator):
        worker, worker_id = self._join(coordinator)
        worker.close()
        # the first send may land in the kernel buffer; the coordinator
        # either fails the send immediately or notices EOF on poll
        ok = coordinator.send_job(worker_id, {"type": "job", "task": "t5"})
        if ok:
            pump(coordinator, until=lambda e: any(
                ev[0] == "lost" for ev in e))
        assert coordinator.send_job(
            worker_id, {"type": "job", "task": "t6"}) is False
