"""Wire-protocol unit tests: framing, payloads, addresses.

The protocol layer has one correctness obligation — an arbitrary byte
stream of concatenated frames parses back into the same frame sequence
regardless of how ``recv`` happened to chunk it — plus loud failure on
anything that is not a frame stream.
"""

import socket

import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    decode_payload,
    encode_frame,
    encode_payload,
    parse_address,
    recv_frame,
    send_frame,
)


class TestFraming:
    def test_round_trip_one_frame(self):
        frame = {"type": "job", "task": "7", "attempt": 2}
        assert FrameReader().feed(encode_frame(frame)) == [frame]

    def test_byte_at_a_time_reassembly(self):
        frames = [
            {"type": "hello", "pid": 123},
            {"type": "heartbeat"},
            {"type": "result", "task": "1", "payload": "x" * 500},
        ]
        wire = b"".join(encode_frame(f) for f in frames)
        reader = FrameReader()
        seen = []
        for i in range(len(wire)):
            seen.extend(reader.feed(wire[i:i + 1]))
        assert seen == frames

    def test_many_frames_in_one_feed(self):
        frames = [{"type": "heartbeat", "n": n} for n in range(10)]
        wire = b"".join(encode_frame(f) for f in frames)
        assert FrameReader().feed(wire) == frames

    def test_oversized_length_prefix_is_a_frame_error(self):
        import struct

        bad = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError):
            FrameReader().feed(bad)

    def test_non_json_body_is_a_frame_error(self):
        import struct

        body = b"\xff\xfe not json"
        with pytest.raises(FrameError):
            FrameReader().feed(struct.pack(">I", len(body)) + body)

    def test_untyped_frame_is_a_frame_error(self):
        import json
        import struct

        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(FrameError):
            FrameReader().feed(struct.pack(">I", len(body)) + body)


class TestPayloads:
    def test_python_values_round_trip(self):
        value = ("result", {"counters": {"sim.windows": 2}}, 0.25, 4242,
                 [{"name": "attempt"}])
        assert decode_payload(encode_payload(value)) == value

    def test_payload_is_json_safe_ascii(self):
        import json

        text = encode_payload({"k": b"\x00\xff"})
        assert json.loads(json.dumps(text)) == text


class TestRecvFrame:
    def test_recv_over_socketpair_preserves_frame_boundaries(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "welcome", "worker_id": 1})
            send_frame(left, {"type": "job", "task": "9"})
            reader = FrameReader()
            assert recv_frame(right, reader) == {
                "type": "welcome", "worker_id": 1}
            assert recv_frame(right, reader) == {"type": "job", "task": "9"}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()


class TestParseAddress:
    def test_host_port_is_tcp(self):
        assert parse_address("10.1.2.3:7071") == (
            socket.AF_INET, ("10.1.2.3", 7071))

    def test_bare_port_defaults_host(self):
        assert parse_address(":7071") == (
            socket.AF_INET, ("127.0.0.1", 7071))

    def test_path_is_unix(self):
        family, arg = parse_address("/tmp/cluster.sock")
        assert family == socket.AF_UNIX
        assert arg == "/tmp/cluster.sock"

    def test_path_containing_colon_stays_unix(self):
        family, _ = parse_address("/tmp/run:1/cluster.sock")
        assert family == socket.AF_UNIX
