"""End-to-end cluster runs: byte-identical to serial, loss-tolerant.

The acceptance bar from the distributed-execution work: a run scheduled
over a spawned two-worker fleet — including one whose worker is
SIGKILLed mid-job — must reproduce the serial run's result JSON, span
tree signature and merged metrics (modulo the wall-clock ``phases``
section, the same tolerance the pool backend is held to).
"""

import json

import pytest

from repro.experiments.backends import resolve_backend
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import RunRequest, execute, runner_for
from repro.experiments.runner import ExperimentSettings
from repro.obs import ProbeBus
from repro.obs.spans import dedupe_spans, read_spans, span_path, tree_signature

MICRO = ExperimentSettings.quick(
    memory_bytes=8 << 20, windows=1, benchmarks=("mcf", "gcc")
)


def run_fig17(cache_dir, **request_overrides):
    request = RunRequest(
        "fig17", settings=MICRO, cache_dir=str(cache_dir),
        **request_overrides,
    )
    runner = runner_for(request)
    try:
        result = execute(request, runner=runner)
    finally:
        runner.close()
    return result, runner


def deterministic_metrics(manifest):
    """The manifest minus wall-clock sections (the pool-parity rule)."""
    doc = json.loads(json.dumps(manifest))
    doc["merged"].pop("phases", None)
    doc.pop("runs", None)
    for entry in doc["jobs"]:
        entry["metrics"].pop("phases", None)
    return doc


def stored_signature(cache_dir, runner):
    spans = dedupe_spans(read_spans(
        span_path(cache_dir, runner.last_run_id)))
    assert spans, "no span store written"
    return tree_signature(spans)


@pytest.mark.slow
class TestClusterParity:
    def test_two_worker_fleet_matches_serial(self, tmp_path):
        serial_result, serial = run_fig17(tmp_path / "serial", jobs=1)
        cluster_result, cluster = run_fig17(
            tmp_path / "cluster", backend="cluster", workers=2)

        assert cluster_result.to_json() == serial_result.to_json()
        assert (deterministic_metrics(cluster.metrics_manifest())
                == deterministic_metrics(serial.metrics_manifest()))
        assert (stored_signature(tmp_path / "cluster", cluster)
                == stored_signature(tmp_path / "serial", serial))
        # the work actually went over the wire: every executed job ran
        # in a process other than this one
        import os

        executed = [m for m in cluster.manifest if not m["cache_hit"]]
        assert executed
        assert all(m["worker"] != os.getpid() for m in executed)

    def test_worker_killed_mid_job_still_lands_identically(self, tmp_path):
        serial_result, _ = run_fig17(tmp_path / "serial", jobs=1)

        bus = ProbeBus()
        faults = FaultPlan((FaultSpec(job_index=1, kind="kill", times=1),))
        cluster_result, cluster = run_fig17(
            tmp_path / "cluster", backend="cluster", workers=2,
            faults=faults, probes=bus)

        assert not cluster.failures
        assert cluster.stats.worker_crashes >= 1
        assert cluster_result.to_json() == serial_result.to_json()
        counters = bus.snapshot()["counters"]
        assert counters["engine.worker_crashes"] >= 1
        assert counters["cluster.requeues"] >= 1
        assert counters["cluster.worker_lost"] >= 1


class TestBackendResolution:
    def test_cluster_name_resolves_lazily(self):
        backend = resolve_backend("cluster", workers=3)
        try:
            assert backend.name == "cluster"
            assert backend.workers == 3
        finally:
            backend.close()

    def test_runrequest_threads_the_backend_name(self, tmp_path):
        request = RunRequest("fig17", settings=MICRO,
                             cache_dir=str(tmp_path),
                             backend="cluster", workers=2)
        runner = runner_for(request)
        try:
            assert runner.backend is not None
            assert runner.backend.name == "cluster"
            assert runner.backend.workers == 2
        finally:
            runner.close()
