"""Cluster-test fixtures.

Same cache isolation as the experiment tests: spawned workers inherit
``REPRO_CACHE_DIR`` via the environment, so pointing it at a per-test
temp dir keeps worker processes from writing into the working tree.
"""

import pytest


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    cache_dir = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir
