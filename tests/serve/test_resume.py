"""Serve-layer run lifecycle: resume tokens, drain journaling, pickup.

``POST /v1/experiments/{id}`` accepts a ``resume`` token and reports
the run id it journaled under via ``X-Repro-Run-Id``; a SIGTERM drain
journals requests still executing to ``serve-inflight.json``; the next
``start()`` resubmits them with their resume tokens.
"""

import asyncio
import json
import time

from repro.experiments import REGISTRY
from repro.experiments.engine import (
    ExperimentRequest,
    request_run_id,
)
from repro.serve import ReproServer, ServeConfig
from repro.serve.http import ClientConnection

from tests.serve.test_server import fake_experiment, run_async


class TestResumeField:
    def test_run_id_header_and_resume_token_round_trip(
        self, monkeypatch, tmp_path
    ):
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_resume", fake_experiment("_svc_resume", calls))

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(tmp_path / "cache"),
            ))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, headers, body = await conn.request(
                        "POST", "/v1/experiments/_svc_resume",
                        body=json.dumps({"quick": True}).encode(),
                    )
                    token = headers.get("x-repro-run-id")
                    status2, headers2, body2 = await conn.request(
                        "POST", "/v1/experiments/_svc_resume",
                        body=json.dumps(
                            {"quick": True, "resume": token}).encode(),
                    )
                return (status, token, body), (status2, headers2, body2)
            finally:
                await server.drain()

        first, second = run_async(scenario())
        status, token, body = first
        assert status == 200
        # the run id is the deterministic journal token for this request
        assert token == request_run_id(ExperimentRequest(
            experiment_id="_svc_resume", quick=True))
        status2, headers2, body2 = second
        assert status2 == 200
        assert headers2.get("x-repro-run-id") == token
        # resume changes nothing about the payload: bodies byte-identical
        assert body2 == body
        assert len(calls) == 1  # second submission replayed the cache

    def test_resume_must_be_a_string(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, _, body = await conn.request(
                        "POST", "/v1/experiments/tab01",
                        body=json.dumps({"resume": 7}).encode(),
                    )
                return status, body
            finally:
                await server.drain()

        status, body = run_async(scenario())
        assert status == 400
        assert b"resume" in body


class TestDrainJournaling:
    def test_drain_journals_inflight_and_restart_resumes(
        self, monkeypatch, tmp_path
    ):
        """Kill the grace period out from under a slow experiment: the
        drained server journals the request, and a fresh server on the
        same cache picks it up and resubmits it with a resume token."""
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_slowres",
            fake_experiment("_svc_slowres", calls, 0.5))
        cache_dir = tmp_path / "cache"
        inflight_path = cache_dir / "journal" / "serve-inflight.json"

        async def drain_mid_flight():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(cache_dir),
                drain_grace_s=0.05,
            ))
            await server.start()

            async def request():
                try:
                    async with ClientConnection(server.host,
                                                server.port) as conn:
                        return await conn.request(
                            "POST", "/v1/experiments/_svc_slowres")
                except (ConnectionError, asyncio.IncompleteReadError,
                        OSError):
                    return None

            pending = asyncio.ensure_future(request())
            for _ in range(200):
                if server._inflight_experiments:
                    break
                await asyncio.sleep(0.01)
            assert server._inflight_experiments
            await server.drain()
            await asyncio.gather(pending, return_exceptions=True)
            return server.metrics_snapshot()

        snap = run_async(drain_mid_flight())
        assert snap["counters"]["serve.journaled_inflight"] == 1
        assert inflight_path.exists()
        doc = json.loads(inflight_path.read_text())
        assert [r["experiment_id"] for r in doc["requests"]] \
            == ["_svc_slowres"]
        # the drained thread executor cannot cancel a running job; let
        # it finish so the restart's resubmission is deterministic
        deadline = time.perf_counter() + 10
        while not calls and time.perf_counter() < deadline:
            time.sleep(0.02)
        assert calls

        async def restart_and_pickup():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(cache_dir),
            ))
            await server.start()
            try:
                for _ in range(400):
                    snap = server.metrics_snapshot()
                    submitted = snap["counters"].get(
                        "serve.experiments_submitted", 0)
                    if (submitted >= 1 and not server._inflight_experiments
                            and not server._singleflight):
                        break
                    await asyncio.sleep(0.01)
                return server.metrics_snapshot()
            finally:
                await server.drain()

        snap = run_async(restart_and_pickup())
        assert snap["counters"]["serve.resumed_runs"] == 1
        # consumed: a second restart must not resubmit again
        assert not inflight_path.exists()

    def test_clean_drain_journals_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(cache_dir),
            ))
            await server.start()
            await server.drain()
            return server.metrics_snapshot()

        snap = run_async(scenario())
        assert "serve.journaled_inflight" not in snap["counters"]
        assert not (cache_dir / "journal" / "serve-inflight.json").exists()

    def test_corrupt_inflight_journal_is_counted_and_discarded(
        self, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        path = cache_dir / "journal" / "serve-inflight.json"
        path.parent.mkdir(parents=True)
        path.write_text("{not json")

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(cache_dir),
            ))
            await server.start()
            try:
                return server.metrics_snapshot()
            finally:
                await server.drain()

        snap = run_async(scenario())
        assert snap["counters"]["serve.resume_journal_corrupt"] == 1
        assert not path.exists()
