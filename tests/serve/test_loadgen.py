"""Load-generator tests against an in-process server."""

import asyncio
import json

import pytest

from repro.serve import ReproServer, ServeConfig
from repro.serve.loadgen import (
    LoadgenResult,
    build_request,
    main,
    run_loadgen,
    transform_body,
)


def run_against_server(mode, endpoint, **kwargs):
    async def scenario():
        server = ReproServer(ServeConfig(port=0, workers=0))
        await server.start()
        try:
            return await run_loadgen(
                server.host, server.port, mode=mode, endpoint=endpoint,
                duration_s=0.4, **kwargs,
            )
        finally:
            await server.drain()

    return asyncio.run(scenario())


class TestLoadgenRuns:
    def test_closed_loop_transform(self):
        result = run_against_server("closed", "transform", concurrency=3)
        assert result.requests > 0
        assert result.ok == result.requests
        assert result.errors == 0
        report = result.report()
        assert report["by_status"] == {"200": result.requests}
        assert report["throughput_rps"] > 0
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["latency_ms"]["p99"] <= report["latency_ms"]["max"]
        json.dumps(report)  # report must be JSON-serialisable as-is
        assert "loadgen [closed/transform]" in result.render()

    def test_open_loop_healthz(self):
        result = run_against_server("open", "healthz", rate=50.0)
        assert result.requests > 0
        assert result.ok == result.requests
        # the schedule should land near rate * duration requests
        assert result.requests >= 10

    def test_unknown_mode_and_endpoint(self):
        with pytest.raises(ValueError, match="unknown endpoint"):
            build_request("nope", "fig19", 4)
        with pytest.raises(ValueError, match="unknown mode"):
            asyncio.run(run_loadgen("127.0.0.1", 1, mode="wat"))


class TestResultMath:
    def test_percentiles_nearest_rank(self):
        result = LoadgenResult(mode="closed", endpoint="transform",
                               duration_s=1.0)
        for latency in (0.010, 0.020, 0.030, 0.040, 0.100):
            result.record(200, latency)
        result.record(429, 0.001)  # non-200 excluded from latency
        assert result.requests == 6
        assert result.ok == 5
        assert result.percentile(0.0) == 0.010
        assert result.percentile(0.5) == 0.030
        assert result.percentile(1.0) == 0.100
        report = result.report()
        assert report["latency_ms"]["max"] == 100.0
        assert report["by_status"] == {"200": 5, "429": 1}

    def test_empty_result_report(self):
        result = LoadgenResult(mode="open", endpoint="healthz",
                               duration_s=0.0)
        report = result.report()
        assert report["throughput_rps"] == 0.0
        assert report["latency_ms"]["p50"] == 0.0

    def test_transform_body_is_deterministic(self):
        assert transform_body() == transform_body()
        payload = json.loads(transform_body(lines=2, words_per_line=4))
        assert payload["op"] == "encode"
        assert len(payload["lines"]) == 2
        assert all(len(line) == 4 for line in payload["lines"])


class TestLoadgenCli:
    def test_main_writes_report_and_requires_success(self, tmp_path,
                                                     capsys):
        """``main()`` runs its own event loop, so push it to a worker
        thread while the target server lives on the test's loop."""
        report_path = tmp_path / "BENCH_serve.json"

        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    None, main, [
                        "--host", server.host, "--port", str(server.port),
                        "--mode", "closed", "--endpoint", "healthz",
                        "--concurrency", "2", "--duration", "0.3",
                        "--report", str(report_path), "--require-success",
                    ],
                )
            finally:
                await server.drain()

        code = asyncio.run(scenario())
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["ok"] == report["requests"] > 0
        out = capsys.readouterr().out
        assert "loadgen [closed/healthz]" in out
