"""Micro-batcher coalescing and transform vectorisation bit-identity."""

import asyncio

import numpy as np
import pytest

from repro.obs import ProbeBus
from repro.serve.batching import (
    MicroBatcher,
    TransformItem,
    make_transform_processor,
)
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import StageSelection, ValueTransformCodec

NUM_ROWS = 2048
INTERLEAVE = 512


def make_codec(stages=None):
    predictor = CellTypePredictor.from_layout(
        CellTypeLayout(interleave=INTERLEAVE), num_rows=NUM_ROWS
    )
    return ValueTransformCodec(predictor, stages=stages)


def sample_lines(rng, n):
    # mix of zero, constant and random lines, like real cache traffic
    lines = rng.integers(0, 1 << 63, size=(n, 8), dtype=np.uint64)
    lines[:: 3] = 0
    lines[1:: 3] = 7
    return lines


class TestMicroBatcher:
    def test_coalesces_and_returns_individual_results(self):
        bus = ProbeBus()
        calls = []

        def process(items):
            calls.append(len(items))
            return [item * 2 for item in items]

        async def run():
            batcher = MicroBatcher(process, max_batch=3, max_delay_s=0.01,
                                   probes=bus)
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(7))
            )
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert results == [i * 2 for i in range(7)]
        assert sum(calls) == 7
        assert max(calls) <= 3
        # at least one batch actually coalesced multiple items
        assert max(calls) > 1
        snap = bus.snapshot()
        assert snap["counters"]["serve.batched_items"] == 7
        assert snap["histograms"]["serve.batch_size"]["count"] == len(calls)

    def test_processor_error_propagates_to_every_waiter(self):
        def process(items):
            raise RuntimeError("boom")

        async def run():
            batcher = MicroBatcher(process, max_batch=4, max_delay_s=0.005)
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(3)),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_wrong_result_count_is_an_error(self):
        async def run():
            batcher = MicroBatcher(lambda items: [], max_batch=2,
                                   max_delay_s=0.0)
            batcher.start()
            with pytest.raises(RuntimeError, match="0 results"):
                await batcher.submit("x")
            await batcher.close()

        asyncio.run(run())

    def test_submit_before_start_raises(self):
        async def run():
            batcher = MicroBatcher(lambda items: items)
            with pytest.raises(RuntimeError, match="not started"):
                await batcher.submit(1)

        asyncio.run(run())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_delay_s=-1)


class TestTransformProcessorBitIdentity:
    """Batched output must equal the single-request codec path, bit for bit."""

    def test_encode_matches_single_path_across_row_kinds(self):
        codec = make_codec()
        process = make_transform_processor(codec)
        rng = np.random.default_rng(11)
        # rows spanning true-cell and anti-cell blocks
        rows = [0, 5, 511, 512, 1023, 1024, 2047]
        items = [
            TransformItem("encode", sample_lines(rng, 1 + i % 4), row)
            for i, row in enumerate(rows)
        ]
        results = process(items)
        for item, batched in zip(items, results):
            single = codec.transform_lines(item.lines, item.row_index)
            np.testing.assert_array_equal(batched, single)

    def test_mixed_encode_decode_batch(self):
        codec = make_codec()
        process = make_transform_processor(codec)
        rng = np.random.default_rng(12)
        plain = [sample_lines(rng, 2) for _ in range(3)]
        encoded = [codec.transform_lines(lines, row)
                   for lines, row in zip(plain, (3, 600, 1500))]
        items = [
            TransformItem("encode", plain[0], 3),
            TransformItem("decode", encoded[1], 600),
            TransformItem("encode", plain[2], 1500),
            TransformItem("decode", encoded[0], 3),
        ]
        results = process(items)
        np.testing.assert_array_equal(
            results[0], codec.transform_lines(plain[0], 3))
        np.testing.assert_array_equal(results[1], plain[1])
        np.testing.assert_array_equal(
            results[2], codec.transform_lines(plain[2], 1500))
        np.testing.assert_array_equal(results[3], plain[0])

    def test_roundtrip_through_grouped_paths(self):
        codec = make_codec()
        rng = np.random.default_rng(13)
        groups = [sample_lines(rng, n) for n in (1, 3, 5)]
        rows = [10, 700, 1999]
        encoded = codec.transform_lines_many(groups, rows)
        decoded = codec.untransform_lines_many(encoded, rows)
        for original, back in zip(groups, decoded):
            np.testing.assert_array_equal(original, back)

    def test_stage_selection_respected(self):
        codec = make_codec(stages=StageSelection.none())
        process = make_transform_processor(codec)
        rng = np.random.default_rng(14)
        lines = sample_lines(rng, 4)
        [result] = process([TransformItem("encode", lines, 777)])
        np.testing.assert_array_equal(result, lines)

    def test_empty_batch(self):
        codec = make_codec()
        assert codec.transform_lines_many([], []) == []
        assert codec.untransform_lines_many([], []) == []
