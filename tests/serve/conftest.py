"""Serving-layer test fixtures.

Keeps the engine result cache in a per-test temporary directory so
experiment submissions from server tests never write into the working
tree (same policy as the experiment-test fixtures).
"""

import pytest


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    cache_dir = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir
