"""Unit tests for the minimal HTTP/1.1 layer."""

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    HttpRequest,
    json_body,
    read_request,
    render_response,
)


def parse(wire: bytes, max_body: int = 1 << 20):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(wire)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(run())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = b'{"a": 1}'
        request = parse(
            b"POST /v1/transform HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.body == body
        assert request.json() == {"a": 1}

    def test_query_string_stripped_from_path(self):
        request = parse(b"GET /metrics?format=prom HTTP/1.1\r\n\r\n")
        assert request.path == "/metrics"
        assert request.target == "/metrics?format=prom"

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert err.value.status == 400

    def test_body_too_large(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                  max_body=10)
        assert err.value.status == 413

    def test_invalid_content_length(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_truncated_body(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert err.value.status == 400

    def test_chunked_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert err.value.status == 501

    def test_bare_lf_line_endings_accepted(self):
        request = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n")
        assert request.path == "/healthz"


class TestRenderResponse:
    def test_status_line_and_content_length(self):
        wire = render_response(200, b"hello", content_type="text/plain")
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 5\r\n" in wire
        assert wire.endswith(b"\r\n\r\nhello")

    def test_extra_headers_and_close(self):
        wire = render_response(429, b"", headers={"Retry-After": "1"},
                               keep_alive=False)
        assert b"HTTP/1.1 429 Too Many Requests\r\n" in wire
        assert b"Retry-After: 1\r\n" in wire
        assert b"Connection: close\r\n" in wire

    def test_json_body_is_canonical(self):
        assert json_body({"b": 1, "a": 2}) == b'{"a": 2, "b": 1}\n'


class TestHttpRequestJson:
    def test_empty_body_reads_as_empty_object(self):
        assert HttpRequest("POST", "/").json() == {}

    def test_invalid_json_raises_400(self):
        with pytest.raises(HttpError) as err:
            HttpRequest("POST", "/", body=b"{nope").json()
        assert err.value.status == 400
