"""End-to-end tests of the serving daemon.

These boot a real :class:`ReproServer` on an ephemeral port inside the
test's event loop (``workers=0`` puts experiment jobs on in-process
threads, so test-registered experiments are visible to the executor)
and talk to it over actual sockets.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import REGISTRY
from repro.experiments.engine import Experiment
from repro.experiments.runner import ExperimentResult
from repro.serve import ReproServer, ServeConfig
from repro.serve.http import ClientConnection
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec

from tests.obs.test_prometheus import histogram_view, parse_prometheus

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_async(coro, timeout=60.0):
    async def guarded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(guarded())


def reference_codec(num_rows=4096, interleave=512):
    predictor = CellTypePredictor.from_layout(
        CellTypeLayout(interleave=interleave), num_rows=num_rows
    )
    return ValueTransformCodec(predictor)


def transform_payload(lines, row_index, op="encode"):
    return json.dumps(
        {"op": op, "row_index": row_index,
         "lines": np.asarray(lines, dtype=np.uint64).tolist()}
    ).encode()


def fake_experiment(experiment_id, calls, delay_s=0.0):
    """A registrable experiment recording executions (thread mode only)."""

    def run(settings):
        calls.append(time.perf_counter())
        if delay_s:
            time.sleep(delay_s)
        return ExperimentResult(
            experiment_id=experiment_id,
            title="Fake serving-test experiment",
            headers=["metric", "value"],
            rows=[["answer", 42]],
        )

    return Experiment(experiment_id, run=run)


class TestControlPlane:
    def test_healthz_and_metrics(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, _, body = await conn.request("GET", "/healthz")
                    assert status == 200
                    health = json.loads(body)
                    assert health["status"] == "ok"
                    assert health["state"] == "serving"

                    status, headers, body = await conn.request(
                        "GET", "/metrics")
                    assert status == 200
                    assert headers["content-type"].startswith("text/plain")
                    metrics = parse_prometheus(body.decode())
                    assert "repro_serve_requests_total" in metrics
            finally:
                await server.drain()

        run_async(scenario())

    def test_unknown_route_404_and_wrong_method_405(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, _, _ = await conn.request("GET", "/nope")
                    assert status == 404
                    status, _, _ = await conn.request("POST", "/healthz")
                    assert status == 405
                    status, _, _ = await conn.request("GET", "/v1/transform")
                    assert status == 405
            finally:
                await server.drain()

        run_async(scenario())


class TestTransformEndpoint:
    def test_batched_response_bit_identical_to_single_codec_path(self):
        """Acceptance: coalesced responses equal the lone codec call."""
        rng = np.random.default_rng(21)
        rows = [0, 17, 511, 512, 600, 1024, 2047, 4095]
        groups = [
            rng.integers(0, 1 << 63, size=(1 + i % 3, 8), dtype=np.uint64)
            for i in range(len(rows))
        ]
        codec = reference_codec()

        async def scenario():
            # a wide coalescing window so concurrent requests batch up
            server = ReproServer(ServeConfig(
                port=0, workers=0, batch_max=16, batch_delay_s=0.1,
            ))
            await server.start()
            try:
                async def one(lines, row):
                    async with ClientConnection(server.host,
                                                server.port) as conn:
                        return await conn.request(
                            "POST", "/v1/transform",
                            body=transform_payload(lines, row),
                        )

                responses = await asyncio.gather(
                    *(one(lines, row) for lines, row in zip(groups, rows))
                )
                snap = server.metrics_snapshot()
                return responses, snap
            finally:
                await server.drain()

        responses, snap = run_async(scenario())
        for (status, _, body), lines, row in zip(responses, groups, rows):
            assert status == 200
            served = np.array(json.loads(body)["lines"], dtype=np.uint64)
            expected = codec.transform_lines(lines, row)
            np.testing.assert_array_equal(served, expected)
        # the requests actually coalesced: fewer batches than items
        hist = snap["histograms"]["serve.batch_size"]
        assert snap["counters"]["serve.batched_items"] == len(rows)
        assert hist["count"] < len(rows)

    def test_encode_decode_roundtrip_over_http(self):
        rng = np.random.default_rng(22)
        lines = rng.integers(0, 1 << 63, size=(4, 8), dtype=np.uint64)

        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    _, _, body = await conn.request(
                        "POST", "/v1/transform",
                        body=transform_payload(lines, 777),
                    )
                    encoded = json.loads(body)["lines"]
                    _, _, body = await conn.request(
                        "POST", "/v1/transform",
                        body=transform_payload(encoded, 777, op="decode"),
                    )
                    return json.loads(body)["lines"]
            finally:
                await server.drain()

        decoded = run_async(scenario())
        np.testing.assert_array_equal(
            np.array(decoded, dtype=np.uint64), lines)

    def test_validation_errors_are_400(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0, num_rows=64))
            await server.start()
            statuses = {}
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    cases = {
                        "bad json": b"{nope",
                        "bad op": json.dumps(
                            {"op": "zap", "lines": [[0] * 8]}).encode(),
                        "row out of range": json.dumps(
                            {"row_index": 64, "lines": [[0] * 8]}).encode(),
                        "short line": json.dumps(
                            {"row_index": 0, "lines": [[1, 2]]}).encode(),
                        "no lines": json.dumps({"row_index": 0}).encode(),
                        "negative word": json.dumps(
                            {"row_index": 0, "lines": [[-1] * 8]}).encode(),
                    }
                    for name, payload in cases.items():
                        status, _, body = await conn.request(
                            "POST", "/v1/transform", body=payload)
                        statuses[name] = (status, json.loads(body))
                return statuses
            finally:
                await server.drain()

        statuses = run_async(scenario())
        for name, (status, body) in statuses.items():
            assert status == 400, name
            assert "error" in body, name


class TestExperimentEndpoint:
    def test_concurrent_identical_requests_coalesce_to_one_execution(
        self, monkeypatch, tmp_path
    ):
        """Acceptance: identical concurrent submissions run once and
        return byte-identical JSON; repeats are cache hits."""
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_test", fake_experiment("_svc_test", calls, 0.3))

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(tmp_path / "cache"),
            ))
            await server.start()
            try:
                async def one():
                    async with ClientConnection(server.host,
                                                server.port) as conn:
                        return await conn.request(
                            "POST", "/v1/experiments/_svc_test",
                            body=json.dumps({"quick": True}).encode(),
                        )

                first, second = await asyncio.gather(one(), one())
                third = await one()
                return first, second, third, server.metrics_snapshot()
            finally:
                await server.drain()

        first, second, third, snap = run_async(scenario())
        assert first[0] == second[0] == third[0] == 200
        # one engine execution for the two concurrent submissions
        assert len(calls) == 1
        assert first[2] == second[2] == third[2]
        result = json.loads(first[2])
        assert result["experiment_id"] == "_svc_test"
        assert result["rows"] == [["answer", 42]]
        counters = snap["counters"]
        assert counters["serve.experiments_coalesced"] == 1
        assert counters["serve.experiments_submitted"] == 2
        # the sequential repeat was served by the result cache
        assert counters["serve.experiment_cache_hits"] == 1

    def test_unknown_experiment_404_and_bad_overrides_400(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status_unknown, _, _ = await conn.request(
                        "POST", "/v1/experiments/not-a-thing")
                    status_overrides, _, body = await conn.request(
                        "POST", "/v1/experiments/tab01",
                        body=json.dumps(
                            {"overrides": {"bogus_field": 1}}).encode(),
                    )
                    status_field, _, _ = await conn.request(
                        "POST", "/v1/experiments/tab01",
                        body=json.dumps({"surprise": 1}).encode(),
                    )
                return status_unknown, status_overrides, body, status_field
            finally:
                await server.drain()

        unknown, overrides, body, field = run_async(scenario())
        assert unknown == 404
        assert overrides == 400
        assert b"bogus_field" in body
        assert field == 400


class TestBackpressure:
    def test_saturated_queue_rejects_429_and_server_stays_live(
        self, monkeypatch, tmp_path
    ):
        """Acceptance: with the bound saturated, excess requests get 429
        promptly and the control plane keeps answering."""
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_slow", fake_experiment("_svc_slow", calls, 0.8))

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, max_pending=1,
                cache_dir=str(tmp_path / "cache"),
            ))
            await server.start()
            try:
                async def slow_request():
                    async with ClientConnection(server.host,
                                                server.port) as conn:
                        return await conn.request(
                            "POST", "/v1/experiments/_svc_slow")

                occupant = asyncio.ensure_future(slow_request())
                # wait until the slow request holds the only slot
                for _ in range(100):
                    if server.inflight >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert server.inflight == 1

                async with ClientConnection(server.host, server.port) as conn:
                    start = time.perf_counter()
                    status, headers, body = await conn.request(
                        "POST", "/v1/transform",
                        body=transform_payload(np.zeros((1, 8), int), 0),
                    )
                    reject_latency = time.perf_counter() - start
                    health_status, _, health_body = await conn.request(
                        "GET", "/healthz")
                    metrics_status, _, _ = await conn.request(
                        "GET", "/metrics")

                occupant_status, _, _ = await occupant
                # the slot is free again: the same request now succeeds
                async with ClientConnection(server.host, server.port) as conn:
                    retry_status, _, _ = await conn.request(
                        "POST", "/v1/transform",
                        body=transform_payload(np.zeros((1, 8), int), 0),
                    )
                return {
                    "status": status,
                    "retry_after": headers.get("retry-after"),
                    "body": json.loads(body),
                    "reject_latency": reject_latency,
                    "health": (health_status, json.loads(health_body)),
                    "metrics_status": metrics_status,
                    "occupant": occupant_status,
                    "retry": retry_status,
                    "snapshot": server.metrics_snapshot(),
                }
            finally:
                await server.drain()

        out = run_async(scenario())
        assert out["status"] == 429
        assert out["retry_after"] == "1"
        assert out["body"]["status"] == 429
        # rejection is immediate, far inside any deadline
        assert out["reject_latency"] < 0.5
        assert out["health"] == (200, {
            "status": "ok", "state": "serving", "inflight": 1,
            "max_pending": 1,
        })
        assert out["metrics_status"] == 200
        assert out["occupant"] == 200
        assert out["retry"] == 200
        assert out["snapshot"]["counters"]["serve.rejected_429"] == 1

    def test_deadline_expiry_returns_504(self, monkeypatch, tmp_path):
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_stall", fake_experiment("_svc_stall", calls, 0.5))

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, request_timeout_s=0.1,
                cache_dir=str(tmp_path / "cache"),
            ))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, _, _ = await conn.request(
                        "POST", "/v1/experiments/_svc_stall")
                    health_status, _, _ = await conn.request("GET", "/healthz")
                # let the shielded execution finish before tearing down
                await asyncio.sleep(0.6)
                return status, health_status, server.metrics_snapshot()
            finally:
                await server.drain()

        status, health_status, snap = run_async(scenario())
        assert status == 504
        assert health_status == 200
        assert snap["counters"]["serve.timeouts"] == 1


class TestMetricsAgreement:
    def test_exposition_agrees_with_merged_snapshot(self):
        """Acceptance: /metrics histogram counts equal the merged
        repro.obs snapshot for the same run."""
        n_requests = 5

        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    for i in range(n_requests):
                        status, _, _ = await conn.request(
                            "POST", "/v1/transform",
                            body=transform_payload(
                                np.full((2, 8), i, dtype=np.uint64), i),
                        )
                        assert status == 200
                    snapshot_before = server.metrics_snapshot()
                    _, _, exposition = await conn.request("GET", "/metrics")
                return snapshot_before, exposition.decode()
            finally:
                await server.drain()

        snapshot, exposition = run_async(scenario())
        metrics = parse_prometheus(exposition)

        latency = snapshot["histograms"]["serve.request_latency_s"]
        buckets, count, total = histogram_view(
            metrics, "repro_serve_request_latency_s")
        assert count == latency["count"] == n_requests
        assert total == pytest.approx(latency["sum"])
        assert buckets["+Inf"] == latency["count"]
        cumulative = 0
        for bound, bucket_count in zip(latency["bounds"], latency["counts"]):
            cumulative += bucket_count
            assert buckets[repr(float(bound))] == cumulative

        batch = snapshot["histograms"]["serve.batch_size"]
        _, batch_count, _ = histogram_view(metrics, "repro_serve_batch_size")
        assert batch_count == batch["count"]
        for name, value in snapshot["counters"].items():
            prom = "repro_" + name.replace(".", "_").replace("-", "_")
            # the GET /metrics request itself is admitted (and counted)
            # before the exposition renders
            expected = value + 1 if name == "serve.requests" else value
            assert metrics[prom + "_total"]["samples"] == [
                ({}, float(expected))
            ]


class TestDrain:
    def test_drain_finishes_inflight_then_rejects(self, monkeypatch,
                                                  tmp_path):
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_drain", fake_experiment("_svc_drain", calls, 0.3))

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(tmp_path / "cache"),
            ))
            await server.start()

            async def request():
                async with ClientConnection(server.host, server.port) as conn:
                    return await conn.request(
                        "POST", "/v1/experiments/_svc_drain")

            inflight = asyncio.ensure_future(request())
            for _ in range(100):
                if server.inflight >= 1:
                    break
                await asyncio.sleep(0.01)
            await server.drain()
            status, _, _ = await inflight
            return status, server.state

        status, state = run_async(scenario())
        assert status == 200  # in-flight work completed during drain
        assert state == "stopped"
        assert len(calls) == 1


class TestServeMain:
    def test_daemon_boots_serves_and_drains_on_sigterm(self, tmp_path):
        metrics_path = tmp_path / "serve-metrics.json"
        env = dict(
            os.environ,
            PYTHONPATH="src",
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--workers", "0", "--metrics-json", str(metrics_path)],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "repro-serve listening on http://" in line
            port = int(line.split("http://", 1)[1].split()[0]
                       .rsplit(":", 1)[1])

            import urllib.request

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as response:
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as response:
                parse_prometheus(response.read().decode())

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["serve.requests"] == 2

    def test_version_flag(self, capsys):
        from repro import api
        from repro.serve.__main__ import main as serve_main

        with pytest.raises(SystemExit) as exit_info:
            serve_main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == f"repro-serve {api.version()}"
