"""End-to-end tests of ``POST /v1/sweeps``: an ad-hoc ScenarioSpec body
runs through the same single-flight + cache machinery as registered
experiments."""

import asyncio
import json

from repro.serve import ReproServer, ServeConfig
from repro.serve.http import ClientConnection


def run_async(coro, timeout=120.0):
    async def guarded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(guarded())


def sweep_body(**extra):
    payload = {
        "spec": {
            "scenario_id": "svc-sweep",
            "description": "serve-test sweep",
            "axes": [
                {"name": "temperature",
                 "values": ["NORMAL", "EXTENDED"]},
                {"name": "benchmark", "values": ["mcf"]},
            ],
            "reduction": "sweep_table",
        },
        "quick": True,
        "overrides": {"memory_mb": 4, "windows": 1},
    }
    payload.update(extra)
    return json.dumps(payload).encode()


class TestSweepEndpoint:
    def test_sweep_runs_and_repeat_is_byte_identical_cache_hit(
        self, tmp_path
    ):
        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(tmp_path / "cache"),
                request_timeout_s=120.0,
            ))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    first = await conn.request(
                        "POST", "/v1/sweeps", body=sweep_body())
                    second = await conn.request(
                        "POST", "/v1/sweeps", body=sweep_body())
                return first, second, server.metrics_snapshot()
            finally:
                await server.drain()

        first, second, snap = run_async(scenario())
        assert first[0] == second[0] == 200
        # fresh vs cached: byte-identical bodies
        assert first[2] == second[2]
        result = json.loads(first[2])
        assert result["experiment_id"] == "svc-sweep"
        assert result["headers"][:2] == ["temperature", "benchmark"]
        assert [row[:2] for row in result["rows"]] == [
            ["NORMAL", "mcf"], ["EXTENDED", "mcf"]]
        counters = snap["counters"]
        assert counters["serve.sweep_requests"] == 2
        assert counters["serve.experiment_cache_hits"] >= 1

    def test_concurrent_identical_sweeps_coalesce(self, tmp_path):
        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(tmp_path / "cache"),
                request_timeout_s=120.0,
            ))
            await server.start()
            try:
                async def one():
                    async with ClientConnection(
                        server.host, server.port
                    ) as conn:
                        return await conn.request(
                            "POST", "/v1/sweeps", body=sweep_body())

                first, second = await asyncio.gather(one(), one())
                return first, second, server.metrics_snapshot()
            finally:
                await server.drain()

        first, second, snap = run_async(scenario())
        assert first[0] == second[0] == 200
        assert first[2] == second[2]
        assert snap["counters"]["serve.experiments_coalesced"] == 1

    def test_invalid_specs_are_400_not_engine_failures(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    responses = {}
                    responses["bad_axis"] = await conn.request(
                        "POST", "/v1/sweeps",
                        body=sweep_body(spec={
                            "scenario_id": "s",
                            "axes": [{"name": "bogus_key", "values": [1]},
                                     {"name": "benchmark",
                                      "values": ["mcf"]}],
                        }))
                    responses["no_spec"] = await conn.request(
                        "POST", "/v1/sweeps",
                        body=json.dumps({"quick": True}).encode())
                    responses["unknown_field"] = await conn.request(
                        "POST", "/v1/sweeps", body=sweep_body(surprise=1))
                    responses["bad_overrides"] = await conn.request(
                        "POST", "/v1/sweeps",
                        body=sweep_body(overrides={"bogus_field": 1}))
                    responses["wrong_method"] = await conn.request(
                        "GET", "/v1/sweeps")
                return responses
            finally:
                await server.drain()

        responses = run_async(scenario())
        assert responses["bad_axis"][0] == 400
        assert b"bogus_key" in responses["bad_axis"][2]
        assert responses["no_spec"][0] == 400
        assert responses["unknown_field"][0] == 400
        assert b"surprise" in responses["unknown_field"][2]
        assert responses["bad_overrides"][0] == 400
        assert b"bogus_field" in responses["bad_overrides"][2]
        assert responses["wrong_method"][0] == 405
