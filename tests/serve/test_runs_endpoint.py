"""``GET /v1/runs/{run_id}``: run status from journal + span store.

The serving daemon's read side of span tracing: after an experiment
executes, its run id (the ``X-Repro-Run-Id`` header) resolves to a
status document joining the journal and the span store — including the
``serve.request`` spans the daemon itself appends.
"""

import asyncio
import json

from repro.experiments import REGISTRY
from repro.obs.spans import dedupe_spans, read_spans, span_path
from repro.serve import ReproServer, ServeConfig
from repro.serve.http import ClientConnection

from tests.serve.test_server import fake_experiment, run_async


class TestRunsEndpoint:
    def test_status_after_execution(self, monkeypatch, tmp_path):
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_runs", fake_experiment("_svc_runs", calls))
        cache = tmp_path / "cache"

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(cache),
            ))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    _, headers, _ = await conn.request(
                        "POST", "/v1/experiments/_svc_runs",
                        body=json.dumps({"quick": True}).encode(),
                    )
                    run_id = headers.get("x-repro-run-id")
                    status, _, body = await conn.request(
                        "GET", f"/v1/runs/{run_id}")
                return run_id, status, json.loads(body)
            finally:
                await server.drain()

        run_id, status, doc = run_async(scenario())
        assert status == 200
        assert doc["run_id"] == run_id
        assert doc["state"] == "finished"
        assert doc["jobs"]["done"] == 1
        assert doc["resumable"] is True
        assert doc["retries"] == 0
        assert len(doc["trace_id"]) == 16
        assert doc["spans"] >= 1

        # the daemon appended its own serve.request span to the store
        spans = dedupe_spans(read_spans(span_path(cache, run_id)))
        names = {s["name"] for s in spans}
        assert "serve.request" in names
        assert "serve.offload" in names

    def test_unknown_run_is_404(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, _, body = await conn.request(
                        "GET", "/v1/runs/never-happened")
                return status, body
            finally:
                await server.drain()

        status, body = run_async(scenario())
        assert status == 404
        assert b"unknown run" in body

    def test_post_is_method_not_allowed(self):
        async def scenario():
            server = ReproServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                async with ClientConnection(server.host, server.port) as conn:
                    status, _, _ = await conn.request(
                        "POST", "/v1/runs/whatever", body=b"{}")
                return status
            finally:
                await server.drain()

        assert run_async(scenario()) == 405

    def test_coalesced_requests_each_leave_a_span(
        self, monkeypatch, tmp_path
    ):
        """Two concurrent identical submissions single-flight into one
        execution, but both leave serve.request spans (the follower's
        marked coalesced) — span qualifiers are submission-unique."""
        calls = []
        monkeypatch.setitem(
            REGISTRY, "_svc_coal",
            fake_experiment("_svc_coal", calls, delay_s=0.3))
        cache = tmp_path / "cache"

        async def scenario():
            server = ReproServer(ServeConfig(
                port=0, workers=0, cache_dir=str(cache),
            ))
            await server.start()
            try:
                async def post():
                    async with ClientConnection(
                        server.host, server.port
                    ) as conn:
                        _, headers, _ = await conn.request(
                            "POST", "/v1/experiments/_svc_coal",
                            body=json.dumps({"quick": True}).encode(),
                        )
                        return headers.get("x-repro-run-id")
                run_ids = await asyncio.gather(post(), post())
                return run_ids
            finally:
                await server.drain()

        run_ids = run_async(scenario())
        assert len(set(run_ids)) == 1
        assert len(calls) == 1  # single-flight executed once
        spans = dedupe_spans(read_spans(span_path(cache, run_ids[0])))
        requests = [s for s in spans if s["name"] == "serve.request"]
        assert len(requests) == 2
        assert sum(1 for s in requests if s.get("coalesced")) == 1
