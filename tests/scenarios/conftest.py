"""Scenario-layer test fixtures.

Same cache isolation policy as the experiment tests: the engine's
default cache lands in a per-test temporary directory so end-to-end
sweep runs never write into the working tree.
"""

import pytest


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    cache_dir = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir
