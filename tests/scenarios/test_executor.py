"""Spec expansion: axis binding rules, job digest parity with
hand-written plans, and ad-hoc sweep construction."""

import pytest

from repro.experiments.engine import SIMULATE, SimJob
from repro.experiments.runner import ExperimentSettings
from repro.scenarios.executor import (
    BENCHMARKS_SOURCE,
    adhoc_sweep_spec,
    as_experiment,
    expand,
    resolve_axes,
)
from repro.scenarios.points import SIMULATE_SETTINGS_POINT
from repro.scenarios.spec import ScenarioError, ScenarioSpec, SweepAxis
from repro.transform.codec import StageSelection

SETTINGS = ExperimentSettings(
    memory_bytes=4 << 20, windows=1, benchmarks=("mcf", "bzip2"),
    rows_per_ar=32, seed=3,
)


class TestAxisResolution:
    def test_benchmark_axis_defaults_to_settings_suite(self):
        spec = ScenarioSpec("s", axes=(SweepAxis("benchmark"),))
        axes = resolve_axes(spec, SETTINGS)
        assert axes == {"benchmark": ["mcf", "bzip2"]}

    def test_explicit_values_win_over_source(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("benchmark", values=["omnetpp"]),))
        assert resolve_axes(spec, SETTINGS) == {"benchmark": ["omnetpp"]}

    def test_callable_source_resolves(self):
        spec = ScenarioSpec("s", axes=(SweepAxis(
            "params.trace",
            source="repro.experiments.fig05:trace_names"),),
            point="repro.experiments.fig05:cdf_point")
        axes = resolve_axes(spec, SETTINGS)
        assert len(axes["params.trace"]) == 3

    def test_valueless_axis_without_source_fails(self):
        spec = ScenarioSpec("s", axes=(SweepAxis("row_bytes"),
                                       SweepAxis("benchmark")))
        with pytest.raises(ScenarioError, match="row_bytes"):
            resolve_axes(spec, SETTINGS)


class TestSimulateBinding:
    def test_benchmark_axis_matches_handwritten_plan(self):
        """An expanded benchmark sweep is job-for-job identical to the
        loop the figure modules used to write by hand — which is what
        keeps pre-refactor cache entries valid."""
        spec = ScenarioSpec("s", axes=(SweepAxis("benchmark"),))
        jobs = expand(spec, SETTINGS).jobs
        assert jobs == [
            SimJob(benchmark="mcf", seed_offset=0),
            SimJob(benchmark="bzip2", seed_offset=1),
        ]

    def test_allocation_outer_benchmark_inner_row_major(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("allocated_fraction", values=[0.5, 1.0]),
            SweepAxis("benchmark"),
        ))
        jobs = expand(spec, SETTINGS).jobs
        assert [(j.allocated_fraction, j.benchmark, j.seed_offset)
                for j in jobs] == [
            (0.5, "mcf", 0), (0.5, "bzip2", 1),
            (1.0, "mcf", 0), (1.0, "bzip2", 1),
        ]

    def test_config_axis_materialises_config_overrides(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("row_bytes", values=[2048, 4096]),
            SweepAxis("benchmark", values=["mcf"]),
        ))
        jobs = expand(spec, SETTINGS).jobs
        assert [j.config_overrides for j in jobs] == [
            {"row_bytes": 2048}, {"row_bytes": 4096}]
        assert all(j.fn == SIMULATE for j in jobs)

    def test_static_stage_overrides_materialise_stage_selection(self):
        spec = ScenarioSpec(
            "s", axes=(SweepAxis("benchmark", values=["mcf"]),),
            overrides={"stages.rotation": False},
        )
        job = expand(spec, SETTINGS).jobs[0]
        assert job.config_overrides == {
            "stages": StageSelection(rotation=False)}

    def test_settings_axis_reroutes_through_settings_point(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("temperature", values=["NORMAL", "EXTENDED"]),
            SweepAxis("benchmark", values=["mcf"]),
        ))
        jobs = expand(spec, SETTINGS).jobs
        assert [j.fn for j in jobs] == [SIMULATE_SETTINGS_POINT] * 2
        assert [j.params["settings"]["temperature"] for j in jobs] == [
            "NORMAL", "EXTENDED"]

    def test_axis_value_wins_over_static_override(self):
        spec = ScenarioSpec(
            "s",
            axes=(SweepAxis("row_bytes", values=[2048]),
                  SweepAxis("benchmark", values=["mcf"])),
            overrides={"row_bytes": 8192},
        )
        job = expand(spec, SETTINGS).jobs[0]
        assert job.config_overrides == {"row_bytes": 2048}

    def test_overrides_axis_applies_per_cell_mappings(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("overrides", values=[
                {"stages.rotation": False}, {}]),
            SweepAxis("benchmark", values=["mcf"]),
        ))
        jobs = expand(spec, SETTINGS).jobs
        assert jobs[0].config_overrides == {
            "stages": StageSelection(rotation=False)}
        assert jobs[1].config_overrides is None

    def test_simulate_needs_a_benchmark_axis(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("row_bytes", values=[2048]),))
        with pytest.raises(ScenarioError, match="benchmark"):
            expand(spec, SETTINGS)

    def test_simulate_rejects_point_params(self):
        spec = ScenarioSpec("s", axes=(SweepAxis("benchmark"),),
                            point_params={"x": 1})
        with pytest.raises(ScenarioError, match="custom points"):
            expand(spec, SETTINGS)

    def test_unknown_override_key_fails_eagerly(self):
        spec = ScenarioSpec("s", axes=(
            SweepAxis("bogus_key", values=[1]),
            SweepAxis("benchmark"),
        ))
        with pytest.raises(ScenarioError, match="bogus_key"):
            expand(spec, SETTINGS)


class TestCustomPointBinding:
    def test_params_axes_merge_over_static_point_params(self):
        spec = ScenarioSpec(
            "s",
            axes=(SweepAxis("params.cap_mb", values=[4, 8]),),
            point="repro.experiments.fig19:capacity_point",
            point_params={"benchmark": "mcf"},
        )
        jobs = expand(spec, SETTINGS).jobs
        assert [j.params for j in jobs] == [
            {"benchmark": "mcf", "cap_mb": 4},
            {"benchmark": "mcf", "cap_mb": 8},
        ]
        assert all(j.benchmark == "mcf" for j in jobs)
        assert all(j.fn == "repro.experiments.fig19:capacity_point"
                   for j in jobs)

    def test_point_without_benchmark_param_uses_scenario_id(self):
        spec = ScenarioSpec("solo", point="mod:attr")
        job = expand(spec, SETTINGS).jobs[0]
        assert job.benchmark == "solo"
        assert job.params is None

    def test_custom_point_rejects_override_axes(self):
        spec = ScenarioSpec(
            "s", axes=(SweepAxis("row_bytes", values=[2048]),),
            point="mod:attr",
        )
        with pytest.raises(ScenarioError, match="params"):
            expand(spec, SETTINGS)


class TestAsExperiment:
    def test_wraps_spec_as_plan_reduce_experiment(self):
        spec = ScenarioSpec(
            "s", axes=(SweepAxis("benchmark"),),
            reduction="sweep_table",
        )
        experiment = as_experiment(spec)
        assert experiment.experiment_id == "s"
        assert not experiment.is_legacy
        assert len(experiment.plan(SETTINGS)) == 2


class TestAdhocSweepSpec:
    def test_benchmark_axis_appended_innermost(self):
        spec = adhoc_sweep_spec({"temperature": ["NORMAL", "EXTENDED"]})
        assert spec.axis_names() == ["temperature", "benchmark"]
        assert spec.axes[-1].source == BENCHMARKS_SOURCE

    def test_explicit_benchmarks_become_axis_values(self):
        spec = adhoc_sweep_spec({"memory_mb": [4, 8]},
                                benchmarks=["mcf"])
        assert spec.axes[-1].value_list == ["mcf"]

    def test_user_benchmark_axis_is_kept(self):
        spec = adhoc_sweep_spec({"benchmark": ["mcf", "bzip2"]})
        assert spec.axis_names() == ["benchmark"]

    def test_benchmark_axis_and_list_conflict(self):
        with pytest.raises(ScenarioError, match="not both"):
            adhoc_sweep_spec({"benchmark": ["mcf"]}, benchmarks=["mcf"])

    def test_identical_inputs_give_identical_ids(self):
        kwargs = dict(axes={"memory_mb": [4, 8]},
                      overrides={"stages.rotation": False})
        assert adhoc_sweep_spec(**kwargs) == adhoc_sweep_spec(**kwargs)
        assert adhoc_sweep_spec(**kwargs).scenario_id.startswith("sweep-")

    def test_different_inputs_give_different_ids(self):
        a = adhoc_sweep_spec({"memory_mb": [4]})
        b = adhoc_sweep_spec({"memory_mb": [8]})
        assert a.scenario_id != b.scenario_id

    def test_metrics_land_in_reduction_params(self):
        spec = adhoc_sweep_spec({"memory_mb": [4]},
                                metrics=["normalized_refresh"])
        assert spec.reduction_params_dict == {
            "metrics": ["normalized_refresh"]}
