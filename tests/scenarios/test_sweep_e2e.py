"""Acceptance: a never-registered ad-hoc sweep runs end-to-end through
the CLI and the api, and repeating it is served from the cache."""

import json
import re

import pytest

import repro.api as api
from repro.experiments.__main__ import main

SWEEP_ARGS = [
    "sweep", "--quick", "--memory-mb", "4", "--windows", "1",
    "--axis", "temperature=NORMAL,EXTENDED",
    "--set", "stages.rotation=false",
    "--benchmarks", "mcf",
    "--json",
]


def engine_counts(err_text):
    match = re.search(r"(\d+) jobs, (\d+) cache hits, (\d+) misses",
                      err_text)
    assert match, f"no engine summary in stderr: {err_text!r}"
    return tuple(int(g) for g in match.groups())


class TestCliSweep:
    def test_sweep_runs_and_repeats_from_cache(self, capsys):
        assert main(SWEEP_ARGS) == 0
        first = capsys.readouterr()
        assert main(SWEEP_ARGS) == 0
        second = capsys.readouterr()

        # identical result bytes, fresh vs cached
        assert first.out == second.out
        result = json.loads(first.out)
        assert result["experiment_id"].startswith("sweep-")
        assert result["headers"] == [
            "temperature", "benchmark", "normalized_refresh",
            "normalized_energy", "ipc.normalized_ipc"]
        assert [row[:2] for row in result["rows"]] == [
            ["NORMAL", "mcf"], ["EXTENDED", "mcf"]]

        jobs, hits, misses = engine_counts(first.err)
        assert (jobs, hits, misses) == (2, 0, 2)
        jobs, hits, misses = engine_counts(second.err)
        assert (jobs, hits, misses) == (2, 2, 0)

    def test_unknown_axis_key_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["sweep", "--axis", "bogus_key=1,2"])
        assert err.value.code == 2
        assert "bogus_key" in capsys.readouterr().err

    def test_sweep_flags_require_the_sweep_command(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig17", "--axis", "temperature=NORMAL"])
        assert "sweep" in capsys.readouterr().err

    def test_sweep_needs_at_least_one_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep"])
        assert "--axis" in capsys.readouterr().err

    def test_list_prints_every_scenario_description(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for scenario_id, spec in api.SCENARIOS.items():
            assert scenario_id in out
            assert spec.description in out


class TestApiSweep:
    def test_spec_request_runs_and_repeats_from_cache(self):
        settings = api.quick_settings(memory_bytes=4 << 20, windows=1)
        spec = api.adhoc_sweep_spec(
            {"temperature": ["NORMAL", "EXTENDED"]},
            overrides={"stages.rotation": False},
            benchmarks=["mcf"],
        )
        runner = api.make_runner(jobs=1)
        first = api.run(api.RunRequest(spec=spec, settings=settings),
                        runner=runner)
        assert first.experiment_id == spec.scenario_id
        assert runner.stats.cache_misses == 2
        second = api.run(api.RunRequest(spec=spec, settings=settings),
                         runner=runner)
        assert second.to_json() == first.to_json()
        assert runner.stats.cache_hits == 2

    def test_run_request_needs_exactly_one_identity(self):
        spec = api.adhoc_sweep_spec({"memory_mb": [4]})
        with pytest.raises(ValueError, match="exactly one"):
            api.run(api.RunRequest())
        with pytest.raises(ValueError, match="exactly one"):
            api.run(api.RunRequest(experiment_id="fig17", spec=spec))

    def test_get_scenario_round_trips_to_runnable_spec(self):
        spec = api.get_scenario("fig17")
        rebuilt = api.ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert api.spec_digest(rebuilt) == api.spec_digest(spec)

    def test_list_scenarios_matches_experiments(self):
        scenarios = api.list_scenarios()
        assert list(scenarios) == api.list_experiments()
        assert all(description for description in scenarios.values())
