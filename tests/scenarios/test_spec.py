"""ScenarioSpec wire-form properties: round-trip fixed point, stable
digests, and loud validation failures.

The hypothesis properties are the contract the engine cache and the
serve daemon's single-flight table rely on: a spec that round-trips
through JSON is *the same* spec (same wire bytes, same digest), and
digests do not depend on process state like ``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.scenarios.spec import (
    ScenarioError,
    ScenarioSpec,
    SweepAxis,
    spec_digest,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# JSON scalars a spec may carry.  Text is kept printable-ish but
# includes unicode; floats exclude NaN/inf (not JSON).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)

params_maps = st.dictionaries(st.text(min_size=1, max_size=12),
                              json_values, max_size=4)

axes_strategy = st.lists(
    st.builds(
        SweepAxis,
        name=st.text(min_size=1, max_size=12),
        values=st.lists(scalars, max_size=4),
        source=st.sampled_from(["", "settings.benchmarks", "mod:attr"]),
    ),
    max_size=3,
    unique_by=lambda axis: axis.name,
)

specs = st.builds(
    ScenarioSpec,
    scenario_id=st.text(min_size=1, max_size=16),
    description=st.text(max_size=30),
    axes=axes_strategy.map(tuple),
    point=st.sampled_from(["simulate", "some.module:point"]),
    point_params=params_maps,
    overrides=params_maps,
    reduction=st.sampled_from(["table", "sweep_table", "mod:reduce"]),
    reduction_params=params_maps,
)


class TestRoundTrip:
    @hyp_settings(max_examples=200, deadline=None)
    @given(spec=specs)
    def test_to_json_from_json_is_a_fixed_point(self, spec):
        wire = spec.to_json()
        reloaded = ScenarioSpec.from_json(wire)
        assert reloaded.to_json() == wire
        assert reloaded == spec

    @hyp_settings(max_examples=200, deadline=None)
    @given(spec=specs)
    def test_digest_survives_the_round_trip(self, spec):
        assert spec_digest(ScenarioSpec.from_json(spec.to_json())) \
            == spec_digest(spec)

    @hyp_settings(max_examples=50, deadline=None)
    @given(spec=specs, indent=st.sampled_from([None, 2]))
    def test_indentation_does_not_change_identity(self, spec, indent):
        reloaded = ScenarioSpec.from_json(spec.to_json(indent=indent))
        assert reloaded == spec

    def test_mapping_order_is_part_of_the_data(self):
        ab = ScenarioSpec("s", point_params={"a": 1, "b": 2})
        ba = ScenarioSpec("s", point_params={"b": 2, "a": 1})
        assert ab != ba
        assert spec_digest(ab) != spec_digest(ba)
        # and order survives the wire
        assert list(ScenarioSpec.from_json(ba.to_json())
                    .point_params_dict) == ["b", "a"]


DIGEST_SNIPPET = """\
from repro.scenarios.spec import ScenarioSpec, SweepAxis, spec_digest
spec = ScenarioSpec(
    scenario_id="digest-probe",
    description="cross-process digest stability probe",
    axes=(SweepAxis("temperature", values=["NORMAL", "EXTENDED"]),
          SweepAxis("benchmark")),
    overrides={"stages.rotation": False, "memory_mb": 16},
    reduction="sweep_table",
    reduction_params={"metrics": ["normalized_refresh"], "title": "t"},
)
print(spec_digest(spec))
"""


class TestDigestStability:
    def test_digest_stable_across_process_restarts(self):
        """Digests cannot depend on hash randomisation or any other
        per-process state — they key the on-disk cache."""
        digests = []
        for hashseed in ("0", "42"):
            proc = subprocess.run(
                [sys.executable, "-c", DIGEST_SNIPPET],
                capture_output=True, text=True, check=True,
                env={**os.environ, "PYTHONPATH": str(REPO_SRC),
                     "PYTHONHASHSEED": hashseed},
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1]
        # and matches this process's view of the same spec
        in_process = spec_digest(ScenarioSpec(
            scenario_id="digest-probe",
            description="cross-process digest stability probe",
            axes=(SweepAxis("temperature", values=["NORMAL", "EXTENDED"]),
                  SweepAxis("benchmark")),
            overrides={"stages.rotation": False, "memory_mb": 16},
            reduction="sweep_table",
            reduction_params={"metrics": ["normalized_refresh"],
                              "title": "t"},
        ))
        assert digests[0] == in_process

    def test_digest_differs_when_any_field_differs(self):
        base = ScenarioSpec("s", axes=(SweepAxis("benchmark"),))
        assert spec_digest(base) != spec_digest(
            ScenarioSpec("s2", axes=(SweepAxis("benchmark"),)))
        assert spec_digest(base) != spec_digest(
            ScenarioSpec("s", axes=(SweepAxis("benchmark"),),
                         overrides={"memory_mb": 4}))


class TestValidation:
    def test_unknown_spec_field_is_rejected(self):
        with pytest.raises(ScenarioError, match="unknown spec field"):
            ScenarioSpec.from_dict({"scenario_id": "s", "surprise": 1})

    def test_unknown_axis_field_is_rejected(self):
        with pytest.raises(ScenarioError, match="unknown axis field"):
            ScenarioSpec.from_dict(
                {"scenario_id": "s",
                 "axes": [{"name": "benchmark", "wat": 1}]})

    def test_duplicate_axis_names_are_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate axis names"):
            ScenarioSpec("s", axes=(SweepAxis("benchmark"),
                                    SweepAxis("benchmark")))

    def test_non_json_values_are_rejected(self):
        with pytest.raises(ScenarioError, match="JSON-plain"):
            ScenarioSpec("s", point_params={"obj": object()})

    def test_empty_scenario_id_is_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec("")

    def test_invalid_json_text_is_rejected(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")
