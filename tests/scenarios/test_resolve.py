"""Dotted-override resolution: the one path from wire keys to typed
settings/config objects, failing identically everywhere."""

import pytest

from repro.dram.timing import TemperatureMode
from repro.experiments.runner import ExperimentSettings
from repro.scenarios.resolve import (
    apply_settings,
    config_for,
    known_override_keys,
    materialize_config,
    parse_value,
    split_overrides,
)
from repro.scenarios.spec import ScenarioError
from repro.transform.codec import StageSelection


class TestSplitOverrides:
    def test_routes_keys_to_their_layer(self):
        settings_map, config_map = split_overrides({
            "memory_mb": 16,
            "temperature": "NORMAL",
            "row_bytes": 4096,
            "stages.rotation": False,
            "stages.ebdi": True,
        })
        assert settings_map == {"memory_mb": 16, "temperature": "NORMAL"}
        assert config_map == {
            "row_bytes": 4096,
            "stages": {"rotation": False, "ebdi": True},
        }

    def test_unknown_key_lists_everything_accepted(self):
        with pytest.raises(ScenarioError) as err:
            split_overrides({"rotation": False})
        message = str(err.value)
        for key in known_override_keys():
            assert key in message

    def test_stage_flags_must_be_boolean(self):
        with pytest.raises(ScenarioError, match="must be a boolean"):
            split_overrides({"stages.rotation": "false"})

    def test_unknown_stage_flag_lists_stage_keys(self):
        with pytest.raises(ScenarioError, match="stages.rotation"):
            split_overrides({"stages.warp": True})

    def test_empty_mapping_splits_to_empty_maps(self):
        assert split_overrides(None) == ({}, {})
        assert split_overrides({}) == ({}, {})


class TestApplySettings:
    def test_memory_mb_and_temperature_resolve(self):
        settings = ExperimentSettings()
        out = apply_settings(settings, {
            "memory_mb": 8, "temperature": "normal", "windows": 3,
        })
        assert out.memory_bytes == 8 << 20
        assert out.temperature is TemperatureMode.NORMAL
        assert out.windows == 3

    def test_benchmarks_coerce_to_string_tuple(self):
        out = apply_settings(ExperimentSettings(), {"benchmarks": "mcf"})
        assert out.benchmarks == ("mcf",)
        out = apply_settings(ExperimentSettings(),
                             {"benchmarks": ["mcf", "bzip2"]})
        assert out.benchmarks == ("mcf", "bzip2")

    def test_empty_map_returns_settings_untouched(self):
        settings = ExperimentSettings()
        assert apply_settings(settings, {}) is settings
        assert apply_settings(settings, None) is settings

    def test_both_memory_forms_rejected(self):
        with pytest.raises(ScenarioError, match="not both"):
            apply_settings(ExperimentSettings(),
                           {"memory_mb": 8, "memory_bytes": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown settings field"):
            apply_settings(ExperimentSettings(), {"wat": 1})


class TestTemperatureParsing:
    """Satellite contract: a bad temperature raises ValueError naming
    every valid TemperatureMode, on every entry path."""

    @pytest.mark.parametrize("raw,expected", [
        ("NORMAL", TemperatureMode.NORMAL),
        ("normal", TemperatureMode.NORMAL),
        ("Extended", TemperatureMode.EXTENDED),
        (TemperatureMode.EXTENDED, TemperatureMode.EXTENDED),
    ])
    def test_parse_accepts_names_case_insensitively(self, raw, expected):
        assert TemperatureMode.parse(raw) is expected

    def test_parse_error_lists_valid_modes(self):
        with pytest.raises(ValueError) as err:
            TemperatureMode.parse("tropical")
        message = str(err.value)
        assert "NORMAL" in message and "EXTENDED" in message
        assert "tropical" in message

    def test_settings_from_dict_surfaces_the_same_error(self):
        with pytest.raises(ValueError) as err:
            ExperimentSettings.from_dict({"temperature": "tropical"})
        assert "NORMAL" in str(err.value) and "EXTENDED" in str(err.value)

    def test_scenario_override_path_surfaces_the_same_error(self):
        with pytest.raises(ValueError) as err:
            apply_settings(ExperimentSettings(), {"temperature": "lukewarm"})
        assert "NORMAL" in str(err.value) and "EXTENDED" in str(err.value)


class TestMaterializeConfig:
    def test_empty_map_materialises_to_none(self):
        # None (not {}) keeps expanded jobs digest-identical to
        # hand-written jobs that passed config_overrides=None
        assert materialize_config({}) is None
        assert materialize_config(None) is None

    def test_stages_mapping_becomes_stage_selection(self):
        out = materialize_config({"stages": {"rotation": False}})
        assert out["stages"] == StageSelection(rotation=False)
        # unnamed flags keep their all-on defaults
        assert out["stages"].ebdi is True

    def test_cleanse_policy_string_resolves_to_enum(self):
        from repro.osmodel.pages import CleansePolicy

        out = materialize_config({"cleanse_policy": "none"})
        assert isinstance(out["cleanse_policy"], CleansePolicy)

    def test_bad_cleanse_policy_lists_choices(self):
        with pytest.raises(ScenarioError, match="cleanse_policy"):
            materialize_config({"cleanse_policy": "sometimes"})

    def test_bad_stages_value_rejected(self):
        with pytest.raises(ScenarioError, match="stages"):
            materialize_config({"stages": "all"})


class TestConfigFor:
    """Satellite contract: capacity-sweep points build SystemConfig
    through one blessed path instead of copy-pasted scaled() calls."""

    def test_matches_settings_config(self):
        settings = ExperimentSettings(memory_bytes=8 << 20, rows_per_ar=32)
        assert config_for(settings) == settings.config()

    def test_explicit_memory_rescales_geometry(self):
        settings = ExperimentSettings(memory_bytes=8 << 20, rows_per_ar=32)
        config = config_for(settings, memory_bytes=4 << 20)
        assert config == ExperimentSettings(
            memory_bytes=4 << 20, rows_per_ar=32).config()

    def test_config_overrides_thread_through(self):
        settings = ExperimentSettings(memory_bytes=8 << 20, rows_per_ar=32)
        config = config_for(settings, refresh_mode="conventional")
        assert config.refresh_mode == "conventional"

    def test_fig19_and_ext_hybrid_use_it(self):
        import inspect

        from repro.experiments import ext_hybrid, fig19

        assert "config_for" in inspect.getsource(fig19.capacity_point)
        assert "config_for" in inspect.getsource(ext_hybrid.capacity_point)


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("true", True),
        ("False", False),
        ("null", None),
        ("16", 16),
        ("0.25", 0.25),
        ("NORMAL", "NORMAL"),
        (" mcf ", "mcf"),
    ])
    def test_scalar_parsing(self, text, expected):
        assert parse_value(text) == expected
