"""Tests for the latency-hiding refresh scheduler models."""

import pytest

from repro.controller.refresh_scheduling import (
    JEDEC_MAX_POSTPONED,
    BaselineRefreshStall,
    ElasticRefreshQueue,
    RefreshPausingModel,
    zero_refresh_stall,
)
from repro.dram.timing import TimingParams


@pytest.fixture
def timing():
    return TimingParams()


class TestBaseline:
    def test_collision_is_duty_cycle(self, timing):
        report = BaselineRefreshStall(timing).report()
        duty = timing.trfc_ns / (timing.tret_s / 8192 * 1e9)
        assert report.collision_probability == pytest.approx(duty)
        assert report.mean_stall_ns == pytest.approx(timing.trfc_ns / 2)

    def test_stall_per_access(self, timing):
        report = BaselineRefreshStall(timing).report()
        assert report.stall_per_access_ns == pytest.approx(
            report.collision_probability * report.mean_stall_ns
        )


class TestElasticRefresh:
    def test_debt_hides_most_busy_ars(self, timing):
        queue = ElasticRefreshQueue(timing)
        hidden = queue.hidden_fraction(busy_time_fraction=0.5,
                                       mean_busy_ars=4.0)
        assert hidden > 0.85  # 8 deep debt vs mean-4 phases

    def test_no_debt_hides_nothing(self, timing):
        queue = ElasticRefreshQueue(timing, max_postponed=0)
        assert queue.hidden_fraction(0.5) == 0.0

    def test_elastic_beats_baseline(self, timing):
        base = BaselineRefreshStall(timing).report()
        elastic = ElasticRefreshQueue(timing).report(busy_time_fraction=0.5)
        assert elastic.stall_per_access_ns < base.stall_per_access_ns

    def test_longer_busy_phases_hide_less(self, timing):
        queue = ElasticRefreshQueue(timing)
        short = queue.report(0.5, mean_busy_ars=2.0)
        long = queue.report(0.5, mean_busy_ars=32.0)
        assert long.stall_per_access_ns > short.stall_per_access_ns

    def test_jedec_limit_constant(self):
        assert JEDEC_MAX_POSTPONED == 8

    def test_rejects_bad_inputs(self, timing):
        with pytest.raises(ValueError):
            ElasticRefreshQueue(timing, max_postponed=-1)
        with pytest.raises(ValueError):
            ElasticRefreshQueue(timing).hidden_fraction(1.5)


class TestRefreshPausing:
    def test_pause_wait_is_one_row_interval(self, timing):
        model = RefreshPausingModel(timing, rows_per_ar=128)
        assert model.pause_granularity_ns == pytest.approx(
            timing.trfc_ns / 128
        )

    def test_pausing_slashes_mean_stall(self, timing):
        base = BaselineRefreshStall(timing).report()
        paused = RefreshPausingModel(timing).report()
        assert paused.mean_stall_ns < base.mean_stall_ns / 50

    def test_rejects_bad_rows(self, timing):
        with pytest.raises(ValueError):
            RefreshPausingModel(timing, rows_per_ar=0)


class TestZeroRefreshStall:
    def test_skipping_scales_collisions(self, timing):
        full = zero_refresh_stall(timing, normalized_refresh=1.0)
        skipping = zero_refresh_stall(timing, normalized_refresh=0.4)
        assert skipping.collision_probability == pytest.approx(
            full.collision_probability * 0.4
        )

    def test_policies_are_complementary(self, timing):
        """Scheduling hides latency, skipping removes work: combining
        ZERO-REFRESH's reduced duty with pausing's tiny waits compounds."""
        base = BaselineRefreshStall(timing).report()
        zr = zero_refresh_stall(timing, 0.6)
        paused = RefreshPausingModel(timing).report()
        combined = zr.collision_probability * paused.mean_stall_ns
        assert combined < zr.stall_per_access_ns
        assert combined < paused.stall_per_access_ns
        assert combined < base.stall_per_access_ns
