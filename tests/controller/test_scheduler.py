"""Tests for the bank-availability (refresh interference) model."""

import pytest

from repro.controller.scheduler import BankAvailabilityModel
from repro.dram.refresh import RefreshStats
from repro.dram.timing import TemperatureMode, TimingParams


@pytest.fixture
def model():
    return BankAvailabilityModel(timing=TimingParams())


class TestBaseline:
    def test_baseline_unavailability(self, model):
        # tRFC=28ns every tRET/8192 = 3.906us -> ~0.717%
        assert model.baseline_unavailability == pytest.approx(
            28e-9 / (0.032 / 8192), rel=1e-6
        )

    def test_normal_temperature_halves_duty(self):
        timing = TimingParams().with_temperature(TemperatureMode.NORMAL)
        model = BankAvailabilityModel(timing=timing)
        base = BankAvailabilityModel(timing=TimingParams())
        assert model.baseline_unavailability == pytest.approx(
            base.baseline_unavailability / 2
        )


class TestUnavailability:
    def test_no_skipping_matches_baseline(self, model):
        stats = RefreshStats(groups_refreshed=100, groups_skipped=0)
        assert model.unavailability(stats) == pytest.approx(
            model.baseline_unavailability
        )

    def test_full_skipping_leaves_status_overhead(self, model):
        stats = RefreshStats(groups_refreshed=0, groups_skipped=1280,
                             ar_commands=10, status_reads=10)
        u = model.unavailability(stats)
        assert 0 < u < model.baseline_unavailability * 0.05

    def test_partial_skipping_scales_linearly(self, model):
        half = RefreshStats(groups_refreshed=50, groups_skipped=50)
        u = model.unavailability(half)
        assert u == pytest.approx(model.baseline_unavailability * 0.5)

    def test_empty_stats_fall_back_to_baseline(self, model):
        assert model.unavailability(RefreshStats()) == pytest.approx(
            model.baseline_unavailability
        )

    def test_bandwidth_recovered_positive_when_skipping(self, model):
        stats = RefreshStats(groups_refreshed=30, groups_skipped=70)
        assert model.bandwidth_recovered(stats) > 0

    def test_overhead_never_exceeds_baseline(self, model):
        stats = RefreshStats(groups_refreshed=100, groups_skipped=0,
                             ar_commands=1, status_reads=1, status_writes=1)
        assert model.unavailability(stats) <= model.baseline_unavailability
