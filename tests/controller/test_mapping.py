"""Tests for page/line address mapping."""

import numpy as np
import pytest

from repro.controller.mapping import AddressMapper
from repro.dram.geometry import DramGeometry


def make_mapper(row_bytes=4096):
    geom = DramGeometry(rows_per_bank=(8 << 20) // (8 * row_bytes),
                        row_bytes=row_bytes, rows_per_ar=32,
                        cell_interleave=32)
    return AddressMapper(geom)


class TestPageRowMapping4K:
    def test_one_row_per_page(self):
        mapper = make_mapper(4096)
        assert mapper.rows_per_page == 1
        assert mapper.pages_per_row == 1

    def test_page_zero_is_bank0_row0(self):
        mapper = make_mapper(4096)
        banks, rows = mapper.page_rows(0)
        assert int(banks) == 0 and int(rows) == 0

    def test_consecutive_pages_interleave_banks(self):
        mapper = make_mapper(4096)
        banks, rows = mapper.page_rows(np.arange(10))
        np.testing.assert_array_equal(banks, np.arange(10) % 8)
        np.testing.assert_array_equal(rows, np.arange(10) // 8)

    def test_page_of_row_inverts(self):
        mapper = make_mapper(4096)
        for page in (0, 1, 17, 100):
            banks, rows = mapper.page_rows(page)
            assert mapper.page_of_row(int(banks), int(rows)) == page

    def test_page_lines_match_line_decomposition(self):
        mapper = make_mapper(4096)
        page = 13
        lines = mapper.page_lines(page)
        banks, rows, _ = mapper.line_location(lines)
        page_banks, page_rows = mapper.page_rows(page)
        assert (banks == int(page_banks)).all()
        assert (rows == int(page_rows)).all()

    def test_rejects_out_of_range_page(self):
        mapper = make_mapper(4096)
        with pytest.raises(ValueError):
            mapper.page_rows(mapper.total_pages)
        with pytest.raises(ValueError):
            mapper.page_lines(-1)


class TestPageRowMapping2K:
    def test_two_rows_per_page(self):
        mapper = make_mapper(2048)
        assert mapper.rows_per_page == 2
        banks, rows = mapper.page_rows(0)
        assert banks.shape[-1] == 2

    def test_page_rows_consistent_with_lines(self):
        mapper = make_mapper(2048)
        page = 5
        lines = mapper.page_lines(page)
        line_banks, line_rows, _ = mapper.line_location(lines)
        page_banks, page_rows = mapper.page_rows(page)
        assert set(zip(line_banks.tolist(), line_rows.tolist())) == set(
            zip(np.ravel(page_banks).tolist(), np.ravel(page_rows).tolist())
        )


class TestPageRowMapping8K:
    def test_two_pages_per_row(self):
        mapper = make_mapper(8192)
        assert mapper.pages_per_row == 2
        banks0, rows0 = mapper.page_rows(0)
        banks1, rows1 = mapper.page_rows(1)
        assert (int(banks0), int(rows0)) == (int(banks1), int(rows1))

    def test_line_offsets_within_shared_row(self):
        mapper = make_mapper(8192)
        assert mapper.page_line_offset(0) == 0
        assert mapper.page_line_offset(1) == 64
        assert mapper.page_line_offset(2) == 0

    def test_lines_land_in_correct_half(self):
        mapper = make_mapper(8192)
        lines = mapper.page_lines(1)
        _, _, line_in_row = mapper.line_location(lines)
        assert line_in_row.min() == 64
        assert line_in_row.max() == 127
