"""Tests for the memory-controller front end."""

import numpy as np
import pytest

from repro.controller.memctrl import MemoryController
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import StageSelection, ValueTransformCodec


def make_controller(row_bytes=4096, stages=StageSelection.full()):
    geom = DramGeometry(rows_per_bank=(8 << 20) // (8 * row_bytes),
                        row_bytes=row_bytes, rows_per_ar=32,
                        cell_interleave=32)
    layout = CellTypeLayout(interleave=32)
    device = DramDevice(geom, layout)
    predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
    codec = ValueTransformCodec(predictor, line_bytes=geom.line_bytes,
                                stages=stages)
    return MemoryController(device, codec)


class TestLineInterface:
    def test_roundtrip_single_line(self):
        ctrl = make_controller()
        rng = np.random.default_rng(0)
        line = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        ctrl.write_line(1234, line)
        np.testing.assert_array_equal(ctrl.read_line(1234), line)

    def test_counts_ebdi_ops_on_both_paths(self):
        ctrl = make_controller()
        line = np.zeros(8, dtype=np.uint64)
        ctrl.write_line(0, line)
        ctrl.read_line(0)
        assert ctrl.ebdi_ops == 2
        assert ctrl.line_writes == 1
        assert ctrl.line_reads == 1

    def test_stored_bits_differ_from_logical(self):
        """The device must hold transformed, not raw, bits."""
        ctrl = make_controller()
        rng = np.random.default_rng(1)
        line = rng.integers(1, 2**63, size=8, dtype=np.uint64)
        ctrl.write_line(0, line)
        bank, row, lir = ctrl.mapper.line_location(0)
        raw = ctrl.device.read_line(int(bank), int(row), int(lir))
        assert not np.array_equal(raw.ravel(), line)

    def test_batch_write_matches_single_writes(self):
        ctrl_a = make_controller()
        ctrl_b = make_controller()
        rng = np.random.default_rng(2)
        addrs = np.array([0, 7, 200, 3333, 40000])
        lines = rng.integers(0, 2**64, size=(5, 8), dtype=np.uint64)
        ctrl_a.write_lines(addrs, lines)
        for addr, line in zip(addrs, lines):
            ctrl_b.write_line(int(addr), line)
        for bank_a, bank_b in zip(ctrl_a.device.banks, ctrl_b.device.banks):
            np.testing.assert_array_equal(bank_a.data, bank_b.data)

    def test_batch_write_roundtrip(self):
        ctrl = make_controller()
        rng = np.random.default_rng(3)
        addrs = rng.choice(ctrl.geometry.total_lines, size=64, replace=False)
        lines = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        ctrl.write_lines(addrs, lines)
        for addr, line in zip(addrs, lines):
            np.testing.assert_array_equal(ctrl.read_line(int(addr)), line)

    def test_empty_batch_is_noop(self):
        ctrl = make_controller()
        ctrl.write_lines(np.array([], dtype=np.int64),
                         np.empty((0, 8), dtype=np.uint64))
        assert ctrl.line_writes == 0


class TestPageInterface:
    @pytest.mark.parametrize("row_bytes", [2048, 4096, 8192])
    def test_page_roundtrip(self, row_bytes):
        ctrl = make_controller(row_bytes)
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        ctrl.write_page(3, lines)
        np.testing.assert_array_equal(ctrl.read_page(3), lines)

    @pytest.mark.parametrize("row_bytes", [2048, 4096, 8192])
    def test_neighbouring_pages_do_not_clobber(self, row_bytes):
        ctrl = make_controller(row_bytes)
        rng = np.random.default_rng(5)
        a = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        ctrl.write_page(0, a)
        ctrl.write_page(1, b)
        np.testing.assert_array_equal(ctrl.read_page(0), a)
        np.testing.assert_array_equal(ctrl.read_page(1), b)

    def test_zero_page_stores_discharged_bits(self):
        ctrl = make_controller()
        ctrl.zero_page(0)  # true-cell row
        bank, row = 0, 0
        assert not ctrl.device.banks[bank].data[row].any()
        # find an anti-cell page: row 32 with interleave 32 -> page 32*8
        anti_page = 32 * 8
        ctrl.zero_page(anti_page)
        assert (ctrl.device.banks[0].data[32]
                == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_page_and_line_views_agree(self):
        ctrl = make_controller()
        rng = np.random.default_rng(6)
        lines = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        ctrl.write_page(2, lines)
        for i, addr in enumerate(ctrl.mapper.page_lines(2)[:8]):
            np.testing.assert_array_equal(ctrl.read_line(int(addr)), lines[i])


class TestBulkPopulate:
    @pytest.mark.parametrize("row_bytes", [2048, 4096, 8192])
    def test_populate_matches_page_writes(self, row_bytes):
        ctrl_a = make_controller(row_bytes)
        ctrl_b = make_controller(row_bytes)
        rng = np.random.default_rng(7)
        pages = np.arange(16)
        content = rng.integers(0, 2**64, size=(16, 64, 8), dtype=np.uint64)
        ctrl_a.populate_pages(pages, content)
        for page in pages:
            ctrl_b.write_page(int(page), content[page])
        for bank_a, bank_b in zip(ctrl_a.device.banks, ctrl_b.device.banks):
            np.testing.assert_array_equal(bank_a.data, bank_b.data)

    def test_unnotified_populate_keeps_access_bits_clear(self):
        ctrl = make_controller()
        seen = []
        ctrl.device.add_write_observer(lambda b, r: seen.append((b, r)))
        content = np.zeros((4, 64, 8), dtype=np.uint64)
        ctrl.populate_pages(np.arange(4), content, notify=False)
        assert seen == []
        assert ctrl.ebdi_ops == 0

    def test_mismatched_codec_rejected(self):
        geom = DramGeometry(rows_per_bank=256, rows_per_ar=32,
                            cell_interleave=32)
        layout = CellTypeLayout(interleave=32)
        device = DramDevice(geom, layout)
        predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
        codec = ValueTransformCodec(predictor, num_chips=4, line_bytes=32)
        with pytest.raises(ValueError):
            MemoryController(device, codec)
