"""Tests for the refresh engine, staggered counters and skip protocol."""

import numpy as np
import pytest

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshCounters, RefreshEngine, RefreshStats
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=256, rows_per_ar=128, cell_interleave=64)


@pytest.fixture
def layout():
    return CellTypeLayout(interleave=64)


@pytest.fixture
def device(geom, layout):
    return DramDevice(geom, layout)


@pytest.fixture
def codec(geom, layout):
    predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
    return ValueTransformCodec(predictor)


def populate_zero(device, codec):
    geom = device.geometry
    lines = np.zeros((geom.lines_per_row, geom.words_per_line), dtype=np.uint64)
    for bank in range(geom.num_banks):
        for row in range(geom.rows_per_bank):
            device.write_row(bank, row, codec.encode_row(lines, row))


class TestRefreshCounters:
    def test_initial_rows_are_chip_numbers(self):
        counters = RefreshCounters(num_chips=4)
        np.testing.assert_array_equal(counters.rows_for_step(0), [0, 1, 2, 3])

    def test_stagger_rotates_within_block(self):
        counters = RefreshCounters(num_chips=4)
        np.testing.assert_array_equal(counters.rows_for_step(1), [1, 2, 3, 0])
        np.testing.assert_array_equal(counters.rows_for_step(3), [3, 0, 1, 2])

    def test_blocks_advance_by_num_chips(self):
        counters = RefreshCounters(num_chips=4)
        np.testing.assert_array_equal(counters.rows_for_step(4), [4, 5, 6, 7])
        np.testing.assert_array_equal(counters.rows_for_step(5), [5, 6, 7, 4])

    def test_every_chip_covers_every_row_once(self):
        counters = RefreshCounters(num_chips=8)
        rows = counters.rows_for_steps(np.arange(64))  # (8, 64)
        for chip in range(8):
            assert sorted(rows[chip]) == list(range(64))

    def test_unstaggered_counters(self):
        counters = RefreshCounters(num_chips=4, staggered=False)
        np.testing.assert_array_equal(counters.rows_for_step(5), [5, 5, 5, 5])

    def test_step_of_row_inverts(self):
        counters = RefreshCounters(num_chips=8)
        for chip in range(8):
            for row in range(32):
                step = counters.step_of_row(chip, row)
                assert counters.rows_for_step(step)[chip] == row

    def test_vectorised_matches_scalar(self):
        counters = RefreshCounters(num_chips=8)
        steps = np.arange(40)
        matrix = counters.rows_for_steps(steps)
        for i, step in enumerate(steps):
            np.testing.assert_array_equal(matrix[:, i], counters.rows_for_step(step))


class TestConventionalMode:
    def test_refreshes_everything(self, device):
        engine = RefreshEngine(device, mode="conventional")
        stats = engine.run_window(0.0)
        geom = device.geometry
        assert stats.groups_refreshed == geom.total_rows
        assert stats.groups_skipped == 0
        assert stats.ar_commands == geom.num_banks * geom.ar_sets_per_bank

    def test_normalized_refresh_is_one(self, device):
        engine = RefreshEngine(device, mode="conventional")
        stats = engine.run_window(0.0)
        assert stats.normalized_refresh() == 1.0


class TestZeroRefreshMode:
    def test_first_window_is_all_dirty(self, device, codec):
        populate_zero(device, codec)
        engine = RefreshEngine(device)
        stats = engine.run_window(0.0)
        assert stats.dirty_ars == stats.ar_commands
        assert stats.groups_skipped == 0

    def test_second_window_skips_zero_memory(self, device, codec):
        populate_zero(device, codec)
        engine = RefreshEngine(device)
        engine.run_window(0.0)
        stats = engine.run_window(engine.timing.tret_s)
        assert stats.groups_refreshed == 0
        assert stats.groups_skipped == device.geometry.total_rows
        assert stats.normalized_refresh() == 0.0

    def test_write_dirties_only_its_set(self, device, codec, geom):
        populate_zero(device, codec)
        engine = RefreshEngine(device)
        engine.run_window(0.0)
        # Write a random line into bank 0, row 5 (AR set 0).
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 2**64, size=(1, 8), dtype=np.uint64)
        device.write_line(0, 5, 3, codec.encode_row(lines, 5)[:, 0, :],
                          engine.timing.tret_s)
        stats = engine.run_window(engine.timing.tret_s)
        assert stats.dirty_ars == 1
        # the dirty AR refreshes its full 128 groups
        assert stats.groups_refreshed == geom.rows_per_ar

    def test_charged_line_costs_its_diagonal_groups(self, device, codec, geom):
        """After re-derivation, a single fully-random line keeps exactly
        num_chips groups charged (its words, one per chip diagonal)."""
        populate_zero(device, codec)
        engine = RefreshEngine(device)
        engine.run_window(0.0)
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 2**64, size=(1, 8), dtype=np.uint64)
        device.write_line(0, 5, 3, codec.encode_row(lines, 5)[:, 0, :],
                          engine.timing.tret_s)
        engine.run_window(engine.timing.tret_s)  # dirty pass re-derives
        stats = engine.run_window(2 * engine.timing.tret_s)
        assert stats.groups_refreshed == geom.num_chips
        assert stats.dirty_ars == 0

    def test_zero_value_write_stays_skippable(self, device, codec):
        """Writing zeros (e.g. OS page cleansing) keeps the set skippable
        after one re-derivation pass."""
        populate_zero(device, codec)
        engine = RefreshEngine(device)
        engine.run_window(0.0)
        lines = np.zeros((1, 8), dtype=np.uint64)
        device.write_line(0, 5, 3, codec.encode_row(lines, 5)[:, 0, :],
                          engine.timing.tret_s)
        engine.run_window(engine.timing.tret_s)
        stats = engine.run_window(2 * engine.timing.tret_s)
        assert stats.groups_refreshed == 0

    def test_status_accesses_counted(self, device, codec, geom):
        populate_zero(device, codec)
        engine = RefreshEngine(device)
        s1 = engine.run_window(0.0)
        assert s1.status_writes == geom.num_banks * geom.ar_sets_per_bank
        assert s1.status_reads == 0
        s2 = engine.run_window(engine.timing.tret_s)
        assert s2.status_reads == geom.num_banks * geom.ar_sets_per_bank
        assert s2.status_writes == 0

    def test_random_content_never_skipped(self, device, codec, geom):
        rng = np.random.default_rng(7)
        for bank in range(geom.num_banks):
            for row in range(geom.rows_per_bank):
                lines = rng.integers(0, 2**64, size=(geom.lines_per_row, 8),
                                     dtype=np.uint64)
                device.write_row(bank, row, codec.encode_row(lines, row))
        engine = RefreshEngine(device)
        engine.run_window(0.0)
        stats = engine.run_window(engine.timing.tret_s)
        assert stats.groups_skipped == 0


class TestNaiveMode:
    def test_naive_tracker_skips_like_optimised(self, geom, layout, codec):
        device = DramDevice(geom, layout)
        engine = RefreshEngine(device, mode="naive")
        lines = np.zeros((geom.lines_per_row, geom.words_per_line), dtype=np.uint64)
        for bank in range(geom.num_banks):
            for row in range(geom.rows_per_bank):
                device.write_row(bank, row, codec.encode_row(lines, row))
        stats = engine.run_window(0.0)
        # naive tracking is per-write: skipping starts immediately
        assert stats.groups_skipped == geom.total_rows
        assert engine.naive_tracker.updates == geom.total_rows

    def test_rejects_unknown_mode(self, device):
        with pytest.raises(ValueError, match="mode"):
            RefreshEngine(device, mode="bogus")


class TestRunWindow:
    def test_window_covers_all_sets(self, device, geom):
        engine = RefreshEngine(device, mode="conventional")
        stats = engine.run_window(0.0)
        assert stats.ar_commands == geom.num_banks * geom.ar_sets_per_bank
        assert stats.windows == 1

    def test_write_hook_sees_monotonic_spans(self, device):
        engine = RefreshEngine(device, mode="conventional")
        spans = []
        engine.run_window(0.0, write_hook=lambda t0, t1: spans.append((t0, t1)))
        assert all(t0 <= t1 for t0, t1 in spans)
        assert spans[-1][1] == pytest.approx(engine.timing.tret_s)

    def test_stats_accumulate_across_windows(self, device):
        engine = RefreshEngine(device, mode="conventional")
        engine.run_window(0.0)
        engine.run_window(engine.timing.tret_s)
        assert engine.stats.windows == 2
        assert engine.stats.groups_refreshed == 2 * device.geometry.total_rows


class TestRefreshStats:
    def test_reduction_math(self):
        stats = RefreshStats(groups_refreshed=30, groups_skipped=70)
        assert stats.normalized_refresh() == pytest.approx(0.3)
        assert stats.reduction() == pytest.approx(0.7)

    def test_empty_stats_normalize_to_one(self):
        assert RefreshStats().normalized_refresh() == 1.0

    def test_merge(self):
        a = RefreshStats(ar_commands=1, groups_refreshed=10, windows=1)
        b = RefreshStats(ar_commands=2, groups_skipped=5, windows=1)
        merged = a.merged_with(b)
        assert merged.ar_commands == 3
        assert merged.groups_refreshed == 10
        assert merged.groups_skipped == 5
        assert merged.windows == 2
