"""Tests for bank storage and charge-state detection."""

import numpy as np
import pytest

from repro.dram.bank import Bank
from repro.dram.geometry import DramGeometry
from repro.transform.celltype import CellTypeLayout


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=128, rows_per_ar=128, cell_interleave=32)


@pytest.fixture
def bank(geom):
    return Bank(geom, CellTypeLayout(interleave=32))


FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


class TestStorage:
    def test_starts_zeroed(self, bank):
        assert not bank.data.any()

    def test_write_read_line(self, bank, geom):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64,
                             size=(geom.num_chips, geom.words_per_line_per_chip),
                             dtype=np.uint64)
        bank.write_line(3, 7, words, time_s=0.01)
        got = bank.read_line(3, 7)
        np.testing.assert_array_equal(got, words)
        assert bank.write_count == 1
        assert bank.read_count == 1

    def test_write_read_row(self, bank, geom):
        rng = np.random.default_rng(1)
        row_data = rng.integers(
            0, 2**64,
            size=(geom.num_chips, geom.lines_per_row, geom.words_per_line_per_chip),
            dtype=np.uint64)
        bank.write_row(9, row_data)
        np.testing.assert_array_equal(bank.read_row(9), row_data)

    def test_write_marks_dirty_and_recharges(self, bank, geom):
        bank.dirty[:] = False
        words = np.ones((geom.num_chips, 1), dtype=np.uint64)
        bank.write_line(5, 0, words, time_s=0.5)
        assert bank.dirty[5]
        assert (bank.last_refresh[5] == 0.5).all()

    def test_read_recharges_but_keeps_clean(self, bank):
        bank.dirty[:] = False
        bank.read_line(5, 0, time_s=0.25)
        assert not bank.dirty[5]
        assert (bank.last_refresh[5] == 0.25).all()

    def test_bulk_write(self, bank, geom):
        rows = np.array([1, 4, 6])
        data = np.ones(
            (3, geom.num_chips, geom.lines_per_row, geom.words_per_line_per_chip),
            dtype=np.uint64)
        bank.write_rows_bulk(rows, data, time_s=0.1)
        assert (bank.data[rows] == 1).all()
        assert bank.dirty[rows].all()


class TestDischargedDetection:
    def test_zero_true_row_is_discharged(self, bank):
        # rows 0..31 are true cells with interleave=32
        assert bank.detect_discharged(np.array([0]))[0]

    def test_zero_anti_row_is_charged(self, bank):
        # all-zero stored bits on an anti row mean fully *charged* cells
        assert bank.is_anti_row(32)
        assert not bank.detect_discharged(np.array([32]))[0]

    def test_ones_anti_row_is_discharged(self, bank):
        bank.data[32] = FULL
        assert bank.detect_discharged(np.array([32]))[0]

    def test_single_set_bit_charges_true_row(self, bank):
        bank.data[0, 3, 10, 0] = np.uint64(1)
        assert not bank.detect_discharged(np.array([0]))[0]

    def test_per_chip_granularity(self, bank, geom):
        bank.data[0, 3, 10, 0] = np.uint64(1)
        per_chip = bank.detect_discharged_per_chip(np.array([0]))[0]
        expected = np.ones(geom.num_chips, dtype=bool)
        expected[3] = False
        np.testing.assert_array_equal(per_chip, expected)

    def test_spared_row_never_discharged(self, bank):
        assert bank.detect_discharged(np.array([0]))[0]
        bank.spare_row(0)
        assert not bank.detect_discharged(np.array([0]))[0]

    def test_mixed_rows_vectorised(self, bank):
        bank.data[33] = FULL  # anti row fully discharged
        bank.data[1, 0, 0, 0] = np.uint64(5)  # true row charged
        got = bank.detect_discharged(np.array([0, 1, 32, 33]))
        np.testing.assert_array_equal(got, [True, False, False, True])


class TestRefreshBookkeeping:
    def test_refresh_rows_updates_all_chips(self, bank):
        bank.refresh_rows(np.array([2, 3]), 0.7)
        assert (bank.last_refresh[2] == 0.7).all()
        assert (bank.last_refresh[3] == 0.7).all()

    def test_refresh_slices_updates_selected(self, bank):
        bank.refresh_slices(np.array([2, 2]), np.array([0, 5]), 0.9)
        assert bank.last_refresh[2, 0] == 0.9
        assert bank.last_refresh[2, 5] == 0.9
        assert bank.last_refresh[2, 1] == 0.0

    def test_overdue_slices(self, bank):
        bank.last_refresh[:] = 0.0
        bank.refresh_rows(np.arange(128), 0.0)
        bank.refresh_slices(np.array([7]), np.array([4]), 0.05)
        overdue = bank.overdue_slices(time_s=0.069, tret_s=0.064)
        assert len(overdue) == 128 * 8 - 1
        assert [7, 4] not in overdue.tolist()
