"""Tests for the all-bank AR policy (Sec. IV-A alternative)."""

import numpy as np
import pytest

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshEngine
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=128, rows_per_ar=32, cell_interleave=32)


@pytest.fixture
def layout():
    return CellTypeLayout(interleave=32)


def populate(device, codec, pattern="zero", seed=0):
    geom = device.geometry
    rng = np.random.default_rng(seed)
    for bank in range(geom.num_banks):
        for row in range(geom.rows_per_bank):
            if pattern == "zero":
                lines = np.zeros((geom.lines_per_row, 8), dtype=np.uint64)
            else:
                lines = rng.integers(0, 2**64, size=(geom.lines_per_row, 8),
                                     dtype=np.uint64)
            device.write_row(bank, row, codec.encode_row(lines, row))


class TestAllBankPolicy:
    def test_rejects_unknown_policy(self, geom, layout):
        device = DramDevice(geom, layout)
        with pytest.raises(ValueError, match="policy"):
            RefreshEngine(device, policy="per-chip")

    def test_same_refresh_counts_as_per_bank(self, geom, layout):
        predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
        results = {}
        for policy in ("per-bank", "all-bank"):
            device = DramDevice(geom, layout)
            codec = ValueTransformCodec(predictor)
            populate(device, codec, "zero")
            engine = RefreshEngine(device, policy=policy)
            engine.run_window(0.0)
            stats = engine.run_window(engine.timing.tret_s)
            results[policy] = stats
        assert (results["per-bank"].groups_refreshed
                == results["all-bank"].groups_refreshed)
        assert (results["per-bank"].groups_skipped
                == results["all-bank"].groups_skipped)

    def test_all_bank_busy_is_worst_bank(self, geom, layout):
        """Charge one bank: all-bank pays that bank's work in every bank."""
        predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
        device = DramDevice(geom, layout)
        codec = ValueTransformCodec(predictor)
        populate(device, codec, "zero")
        # make bank 3 fully charged (random content)
        rng = np.random.default_rng(1)
        for row in range(geom.rows_per_bank):
            lines = rng.integers(0, 2**64, size=(geom.lines_per_row, 8),
                                 dtype=np.uint64)
            device.write_row(3, row, codec.encode_row(lines, row))
        engine = RefreshEngine(device, policy="all-bank")
        engine.run_window(0.0)
        stats = engine.run_window(engine.timing.tret_s)
        # refreshed: only bank 3's rows; busy: rank blocked as if all 8
        # banks did bank 3's work
        assert stats.groups_refreshed == geom.rows_per_bank
        assert stats.rank_busy_groups == geom.rows_per_bank * geom.num_banks
        assert stats.normalized_busy() > stats.normalized_refresh()

    def test_per_bank_busy_equals_refreshed(self, geom, layout):
        device = DramDevice(geom, layout)
        engine = RefreshEngine(device, mode="conventional")
        stats = engine.run_window(0.0)
        assert stats.rank_busy_groups == stats.groups_refreshed

    def test_conventional_all_bank_busy_equals_total(self, geom, layout):
        device = DramDevice(geom, layout)
        engine = RefreshEngine(device, mode="conventional", policy="all-bank")
        stats = engine.run_window(0.0)
        assert stats.rank_busy_groups == geom.total_rows
        assert stats.normalized_busy() == 1.0
