"""Property-based tests on refresh-schedule invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshCounters, RefreshEngine
from repro.transform.celltype import CellTypeLayout


class TestCounterProperties:
    @settings(max_examples=50)
    @given(num_chips=st.sampled_from([2, 4, 8, 16]),
           blocks=st.integers(min_value=1, max_value=8))
    def test_full_coverage_per_chip(self, num_chips, blocks):
        """Over a whole schedule every chip refreshes every row exactly
        once — staggering permutes, never drops."""
        counters = RefreshCounters(num_chips)
        steps = np.arange(blocks * num_chips)
        rows = counters.rows_for_steps(steps)
        for chip in range(num_chips):
            assert sorted(rows[chip].tolist()) == list(range(len(steps)))

    @settings(max_examples=50)
    @given(num_chips=st.sampled_from([2, 4, 8]),
           step=st.integers(min_value=0, max_value=1000))
    def test_group_is_diagonal_permutation(self, num_chips, step):
        """Each step's rows are a permutation within one block."""
        counters = RefreshCounters(num_chips)
        rows = counters.rows_for_step(step)
        block = (step // num_chips) * num_chips
        assert sorted(rows.tolist()) == list(range(block, block + num_chips))

    @settings(max_examples=50)
    @given(num_chips=st.sampled_from([4, 8]),
           chip=st.integers(min_value=0, max_value=7),
           row=st.integers(min_value=0, max_value=500))
    def test_step_of_row_is_inverse(self, num_chips, chip, row):
        counters = RefreshCounters(num_chips)
        chip = chip % num_chips
        step = counters.step_of_row(chip, row)
        assert counters.rows_for_step(step)[chip] == row


class TestScheduleInvariants:
    def _engine(self, mode="conventional"):
        geom = DramGeometry(rows_per_bank=64, rows_per_ar=32,
                            cell_interleave=16)
        device = DramDevice(geom, CellTypeLayout(interleave=16))
        return RefreshEngine(device, mode=mode)

    def test_conventional_recharges_every_slice(self):
        """After one window every (bank, row, chip) slice is fresh."""
        engine = self._engine()
        engine.run_window(1.0)
        for bank in engine.device.banks:
            assert (bank.last_refresh >= 1.0).all()

    def test_window_work_is_conserved(self):
        """groups_refreshed + groups_skipped == total rows, per window,
        in every mode."""
        for mode in ("conventional", "zero-refresh", "naive"):
            engine = self._engine(mode)
            stats = engine.run_window(0.0)
            assert stats.groups_total == engine.geometry.total_rows

    def test_skipped_rows_keep_no_charge_obligation(self):
        """Every slice is either recharged this window or discharged."""
        engine = self._engine("zero-refresh")
        engine.run_window(0.0)
        stats = engine.run_window(1.0)
        assert stats.groups_skipped > 0  # boot-state true rows skip
        geom = engine.geometry
        rows = np.arange(geom.rows_per_bank)
        for bank in engine.device.banks:
            per_chip = bank.detect_discharged_per_chip(rows)
            stale = bank.last_refresh < 1.0
            assert (per_chip | ~stale).all()
