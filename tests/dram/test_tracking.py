"""Tests for the tracking structures (access bits, status table, naive SRAM)."""

import numpy as np
import pytest

from repro.dram.geometry import DramGeometry
from repro.dram.tracking import (
    AccessBitTable,
    DischargedStatusTable,
    NaiveSramTracker,
)


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=512, rows_per_ar=128, cell_interleave=64)


class TestAccessBitTable:
    def test_starts_clear(self, geom):
        table = AccessBitTable(geom)
        assert not table.peek(0, 0)

    def test_write_sets_covering_bit(self, geom):
        table = AccessBitTable(geom)
        table.note_write(bank=2, row=200)
        assert table.peek(2, 200 // 128)
        assert not table.peek(2, 0)
        assert not table.peek(1, 200 // 128)

    def test_test_and_clear(self, geom):
        table = AccessBitTable(geom)
        table.note_write(0, 5)
        assert table.test_and_clear(0, 0)
        assert not table.test_and_clear(0, 0)

    def test_vectorised_note_writes(self, geom):
        table = AccessBitTable(geom)
        table.note_writes(np.array([0, 1, 1]), np.array([0, 130, 400]))
        assert table.peek(0, 0)
        assert table.peek(1, 1)
        assert table.peek(1, 3)

    def test_sram_cost_one_bit_per_set(self, geom):
        table = AccessBitTable(geom)
        assert table.costs.sram_bits == geom.num_banks * geom.ar_sets_per_bank

    def test_paper_scale_cost_is_8kb(self):
        """32 GB / 8 banks: 8192 sets x 8 banks bits = 8 KB SRAM (Sec. IV-B)."""
        geom = DramGeometry.paper_config()
        table = AccessBitTable(geom)
        assert table.costs.sram_bytes == 8 << 10


class TestDischargedStatusTable:
    def test_starts_all_charged(self, geom):
        table = DischargedStatusTable(geom)
        assert not table.peek(0, 0).any()
        assert table.discharged_fraction() == 0.0

    def test_write_read_vector(self, geom):
        table = DischargedStatusTable(geom)
        status = np.zeros(128, dtype=bool)
        status[::2] = True
        table.write_vector(1, 2, status)
        got = table.read_vector(1, 2)
        np.testing.assert_array_equal(got, status)
        assert table.reads == 1
        assert table.writes == 1

    def test_rejects_bad_vector_length(self, geom):
        table = DischargedStatusTable(geom)
        with pytest.raises(ValueError):
            table.write_vector(0, 0, np.zeros(64, dtype=bool))

    def test_dram_cost_one_bit_per_row(self, geom):
        table = DischargedStatusTable(geom)
        assert table.costs.dram_bits == geom.total_rows
        # staging register: rows_per_ar bits == the paper's 16 B buffer
        assert table.costs.sram_bits == 128

    def test_paper_scale_cost_is_1mb(self):
        geom = DramGeometry.paper_config()
        table = DischargedStatusTable(geom)
        assert table.costs.dram_bytes == 1 << 20


class TestNaiveSramTracker:
    def test_note_write_updates(self, geom):
        tracker = NaiveSramTracker(geom)
        tracker.note_write(0, 10, True)
        assert tracker.is_discharged(0, 10)
        tracker.note_write(0, 10, False)
        assert not tracker.is_discharged(0, 10)
        assert tracker.updates == 2

    def test_vector_round_trip(self, geom):
        tracker = NaiveSramTracker(geom)
        status = np.zeros(128, dtype=bool)
        status[3] = True
        tracker.set_vector(1, 0, status)
        np.testing.assert_array_equal(tracker.vector(1, 0), status)

    def test_sram_cost_one_bit_per_row(self, geom):
        tracker = NaiveSramTracker(geom)
        assert tracker.costs.sram_bits == geom.total_rows

    def test_paper_scale_cost_is_1mb(self):
        """The naive design needs a 1 MB SRAM at 32 GB (Sec. IV-B)."""
        geom = DramGeometry.paper_config()
        tracker = NaiveSramTracker(geom)
        assert tracker.costs.sram_bytes == 1 << 20
