"""Tests for the rank-level device wrapper."""

import numpy as np
import pytest

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.transform.celltype import CellTypeLayout


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=64, rows_per_ar=32, cell_interleave=16)


@pytest.fixture
def device(geom):
    return DramDevice(geom, CellTypeLayout(interleave=16))


class TestConstruction:
    def test_one_bank_per_geometry_bank(self, device, geom):
        assert len(device.banks) == geom.num_banks

    def test_per_bank_layouts(self, geom):
        layouts = [CellTypeLayout(16, phase=b % 2) for b in range(8)]
        device = DramDevice(geom, layouts=layouts)
        assert device.banks[0].is_anti_row(0) is False
        assert device.banks[1].is_anti_row(0) is True

    def test_layout_count_must_match(self, geom):
        with pytest.raises(ValueError, match="one layout per bank"):
            DramDevice(geom, layouts=[CellTypeLayout(16)])


class TestObservers:
    def test_observers_fire_on_writes(self, device, geom):
        seen = []
        device.add_write_observer(lambda b, r: seen.append((b, r)))
        words = np.zeros((geom.num_chips, 1), dtype=np.uint64)
        device.write_line(2, 5, 0, words)
        row_data = np.zeros(
            (geom.num_chips, geom.lines_per_row, 1), dtype=np.uint64)
        device.write_row(3, 7, row_data)
        device.write_line_range(4, 9, 0, row_data[:, :4, :])
        assert seen == [(2, 5), (3, 7), (4, 9)]

    def test_reads_do_not_notify(self, device):
        seen = []
        device.add_write_observer(lambda b, r: seen.append((b, r)))
        device.read_line(0, 0, 0)
        device.read_row(0, 1)
        assert seen == []

    def test_populate_notify_flag(self, device, geom):
        seen = []
        device.add_write_observer(lambda b, r: seen.append((b, r)))
        data = np.zeros(
            (2, geom.num_chips, geom.lines_per_row, 1), dtype=np.uint64)
        device.populate_rows(0, np.array([1, 2]), data, notify=False)
        assert seen == []
        device.populate_rows(0, np.array([3, 4]), data, notify=True)
        assert seen == [(0, 3), (0, 4)]


class TestAggregates:
    def test_total_counters(self, device, geom):
        words = np.zeros((geom.num_chips, 1), dtype=np.uint64)
        device.write_line(0, 0, 0, words)
        device.read_line(0, 0, 0)
        assert device.total_writes == 1
        assert device.total_reads == 1

    def test_discharged_fraction_all_zero(self, device, geom):
        """Boot state: true rows discharged, anti rows charged -> 50%
        with a balanced interleave."""
        assert device.discharged_row_fraction() == pytest.approx(0.5)

    def test_discharged_fraction_after_anti_fill(self, device, geom):
        full = np.uint64(0xFFFFFFFFFFFFFFFF)
        for bank in device.banks:
            anti = bank._anti_rows
            bank.data[anti] = full
        assert device.discharged_row_fraction() == 1.0
