"""Tests for retention variation and the VRT process."""

import numpy as np
import pytest

from repro.dram.variation import RetentionProfile, VrtProcess


class TestRetentionProfile:
    def test_sample_shape_and_floor(self):
        profile = RetentionProfile.sample(10_000,
                                          rng=np.random.default_rng(0))
        assert len(profile) == 10_000
        assert (profile.row_retention_s >= 0.064).all()

    def test_most_rows_retain_long(self):
        """The skew RAIDR exploits: the vast majority of rows retain
        far beyond 64 ms; only a small fraction is anywhere close."""
        profile = RetentionProfile.sample(20_000,
                                          rng=np.random.default_rng(1))
        assert profile.weak_fraction < 0.05
        assert float(np.median(profile.row_retention_s)) > 0.5

    def test_rows_below(self):
        profile = RetentionProfile(np.array([0.07, 0.2, 1.0]))
        np.testing.assert_array_equal(profile.rows_below(0.128), [0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RetentionProfile(np.array([0.0, 1.0]))


class TestVrtProcess:
    def test_no_flips_at_zero_rate(self):
        profile = RetentionProfile.sample(1000, rng=np.random.default_rng(2))
        vrt = VrtProcess(profile, flips_per_row_per_hour=0.0,
                         rng=np.random.default_rng(3))
        flipped = vrt.advance(3600.0)
        assert len(flipped) == 0
        np.testing.assert_array_equal(vrt.retention_s,
                                      profile.row_retention_s)

    def test_flip_rate_matches_expectation(self):
        profile = RetentionProfile.sample(50_000,
                                          rng=np.random.default_rng(4))
        vrt = VrtProcess(profile, flips_per_row_per_hour=0.5,
                         rng=np.random.default_rng(5))
        flipped = vrt.advance(3600.0)
        expected = 50_000 * (1 - np.exp(-0.5))
        assert len(flipped) == pytest.approx(expected, rel=0.1)
        assert vrt.total_flips == len(flipped)

    def test_flips_can_create_unsafe_rows(self):
        """The paper's point: a static profile goes stale under VRT."""
        profile = RetentionProfile.sample(50_000,
                                          rng=np.random.default_rng(6))
        vrt = VrtProcess(profile, flips_per_row_per_hour=1.0,
                         rng=np.random.default_rng(7))
        assigned = np.full(50_000, 0.256)  # everyone binned at 256 ms
        before = len(vrt.unsafe_rows(assigned))
        vrt.advance(3600.0)
        after = len(vrt.unsafe_rows(assigned))
        assert after > before

    def test_rejects_negative_rate(self):
        profile = RetentionProfile.sample(10, rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            VrtProcess(profile, flips_per_row_per_hour=-1.0)
