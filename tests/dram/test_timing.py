"""Tests for timing parameters and temperature modes."""

import pytest

from repro.dram.timing import (
    AR_COMMANDS_PER_WINDOW,
    CurrentParams,
    TemperatureMode,
    TimingParams,
)


class TestTemperatureMode:
    def test_retention_windows(self):
        assert TemperatureMode.NORMAL.tret_s == 0.064
        assert TemperatureMode.EXTENDED.tret_s == 0.032


class TestTimingParams:
    def test_table2_defaults(self):
        t = TimingParams()
        assert t.tras_ns == 28.0
        assert t.trcd_ns == 11.0
        assert t.trrd_ns == 5.0
        assert t.tfaw_ns == 24.0
        assert t.trfc_ns == 28.0

    def test_trefi_is_tret_over_8k(self):
        t = TimingParams()
        assert AR_COMMANDS_PER_WINDOW == 8192
        assert t.trefi_s == pytest.approx(0.032 / 8192)
        assert t.trefi_ns == pytest.approx(3906.25)

    def test_default_temperature_extended(self):
        assert TimingParams().temperature is TemperatureMode.EXTENDED

    def test_with_temperature_preserves_rest(self):
        t = TimingParams().with_temperature(TemperatureMode.NORMAL)
        assert t.tret_s == 0.064
        assert t.trfc_ns == 28.0
        assert t.currents.idd5 == 120.0

    def test_per_bank_trefi(self):
        t = TimingParams()
        assert t.per_bank_trefi_s(8) == pytest.approx(t.trefi_s / 8)


class TestCurrentParams:
    def test_table2_currents(self):
        c = CurrentParams()
        assert (c.idd0, c.idd1, c.idd2p, c.idd2n) == (23.0, 30.0, 7.0, 12.0)
        assert (c.idd3n, c.idd4w, c.idd4r) == (8.0, 58.0, 60.0)
        assert (c.idd5, c.idd6, c.idd7) == (120.0, 8.0, 105.0)
        assert c.vdd == 1.2
