"""Tests for the command-level timing model (Table II constraints)."""

import pytest

from repro.dram.commands import (
    Command,
    CommandTimer,
    TimingViolation,
)
from repro.dram.timing import TimingParams


@pytest.fixture
def timer():
    return CommandTimer(TimingParams(), num_banks=8)


T = TimingParams()
TRP = T.trc_ns - T.tras_ns


class TestActivation:
    def test_act_then_read_after_trcd(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=5)
        with pytest.raises(TimingViolation):
            timer.issue(Command.RD, 0, T.trcd_ns - 1.0)
        timer.issue(Command.RD, 0, T.trcd_ns, row=5)

    def test_read_wrong_row_rejected(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=5)
        with pytest.raises(TimingViolation, match="row"):
            timer.issue(Command.RD, 0, T.trcd_ns, row=6)

    def test_act_needs_row(self, timer):
        with pytest.raises(ValueError):
            timer.issue(Command.ACT, 0, 0.0)

    def test_double_act_same_bank_rejected(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        with pytest.raises(TimingViolation, match="open"):
            timer.issue(Command.ACT, 0, T.trc_ns + 1, row=2)

    def test_trrd_between_banks(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        with pytest.raises(TimingViolation):
            timer.issue(Command.ACT, 1, T.trrd_ns - 1.0, row=1)
        timer.issue(Command.ACT, 1, T.trrd_ns, row=1)

    def test_tfaw_limits_act_burst(self, timer):
        # Four ACTs as fast as tRRD allows...
        for i in range(4):
            timer.issue(Command.ACT, i, i * T.trrd_ns, row=0)
        # ...the fifth must wait for the tFAW window.
        fifth_earliest = timer.earliest(Command.ACT, 4)
        assert fifth_earliest == pytest.approx(T.tfaw_ns)
        with pytest.raises(TimingViolation):
            timer.issue(Command.ACT, 4, 4 * T.trrd_ns, row=0)
        timer.issue(Command.ACT, 4, T.tfaw_ns, row=0)


class TestPrechargeCycle:
    def test_pre_after_tras(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        with pytest.raises(TimingViolation):
            timer.issue(Command.PRE, 0, T.tras_ns - 1.0)
        timer.issue(Command.PRE, 0, T.tras_ns)

    def test_act_after_pre_waits_trp(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        timer.issue(Command.PRE, 0, T.tras_ns)
        with pytest.raises(TimingViolation):
            timer.issue(Command.ACT, 0, T.tras_ns + TRP - 1.0, row=2)
        timer.issue(Command.ACT, 0, T.tras_ns + TRP, row=2)

    def test_trc_bounds_act_to_act(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        timer.issue(Command.PRE, 0, T.tras_ns)
        assert timer.earliest(Command.ACT, 0) >= T.trc_ns - 1e-9


class TestRefreshInterlock:
    def test_ref_needs_precharged_bank(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        assert timer.earliest(Command.REF, 0) == float("inf")
        timer.issue(Command.PRE, 0, T.tras_ns)
        timer.issue(Command.REF, 0, T.tras_ns + TRP)

    def test_commands_blocked_during_trfc(self, timer):
        timer.issue(Command.REF, 0, 0.0)
        with pytest.raises(TimingViolation):
            timer.issue(Command.ACT, 0, T.trfc_ns - 1.0, row=0)
        timer.issue(Command.ACT, 0, T.trfc_ns, row=0)

    def test_other_banks_unaffected_by_per_bank_ref(self, timer):
        timer.issue(Command.REF, 0, 0.0)
        timer.issue(Command.ACT, 1, T.trrd_ns, row=0)  # legal immediately


class TestAccessLatency:
    def test_row_hit_fastest(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=7)
        hit = timer.access_latency_ns(0, 7, 100.0)
        miss = timer.access_latency_ns(0, 8, 100.0)
        closed = timer.access_latency_ns(1, 7, 100.0)
        assert hit < closed < miss

    def test_refreshing_bank_adds_wait(self, timer):
        timer.issue(Command.REF, 0, 0.0)
        during = timer.access_latency_ns(0, 3, T.trfc_ns / 2)
        after = timer.access_latency_ns(0, 3, T.trfc_ns + 1.0)
        assert during == pytest.approx(after + T.trfc_ns / 2)

    def test_history_records_commands(self, timer):
        timer.issue(Command.ACT, 0, 0.0, row=1)
        timer.issue(Command.RD, 0, T.trcd_ns)
        assert [c.command for c in timer.history] == [Command.ACT, Command.RD]
