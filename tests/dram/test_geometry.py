"""Tests for DRAM geometry and address decomposition."""

import numpy as np
import pytest

from repro.dram.geometry import DramGeometry


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=512, rows_per_ar=128, cell_interleave=64)


class TestDerivedSizes:
    def test_table2_ratios(self, geom):
        assert geom.lines_per_row == 64
        assert geom.words_per_line == 8
        assert geom.words_per_line_per_chip == 1
        assert geom.chip_row_bytes == 512
        assert geom.words_per_chip_row == 64
        assert geom.ar_sets_per_bank == 4
        assert geom.total_rows == 4096
        assert geom.total_bytes == 4096 * 4096
        assert geom.lines_per_page == 64

    def test_paper_config_capacity(self):
        geom = DramGeometry.paper_config()
        assert geom.total_bytes == 32 << 30
        # 32 GB / 8192 / 8 banks / 4 KB = 128 rows per AR command (paper II-C)
        assert geom.rows_per_bank // geom.ar_sets_per_bank == 128

    def test_scaled_preserves_ratios(self):
        geom = DramGeometry.scaled(total_bytes=64 << 20)
        assert geom.total_bytes == 64 << 20
        assert geom.rows_per_ar == 128
        assert geom.num_chips == 8
        assert geom.num_banks == 8
        assert geom.row_bytes == 4096

    def test_scaled_rejects_misaligned_capacity(self):
        with pytest.raises(ValueError, match="multiple"):
            DramGeometry.scaled(total_bytes=(4 << 20) + 4096)


class TestValidation:
    def test_rejects_row_not_spreading_over_chips(self):
        with pytest.raises(ValueError):
            DramGeometry(row_bytes=100)

    def test_rejects_rows_not_multiple_of_ar(self):
        with pytest.raises(ValueError, match="rows_per_ar"):
            DramGeometry(rows_per_bank=100, rows_per_ar=128)

    def test_rejects_ar_not_multiple_of_chips(self):
        with pytest.raises(ValueError, match="num_chips"):
            DramGeometry(rows_per_bank=120, rows_per_ar=60, num_chips=8)


class TestAddressDecomposition:
    def test_roundtrip_all_lines(self, geom):
        lines = np.arange(geom.total_lines)
        bank, row, lir = geom.decompose_line(lines)
        np.testing.assert_array_equal(geom.compose_line(bank, row, lir), lines)

    def test_rows_interleave_across_banks(self, geom):
        # consecutive logical rows land in consecutive banks
        first_lines = np.arange(4) * geom.lines_per_row
        bank, row, lir = geom.decompose_line(first_lines)
        np.testing.assert_array_equal(bank, [0, 1, 2, 3])
        np.testing.assert_array_equal(row, [0, 0, 0, 0])
        np.testing.assert_array_equal(lir, [0, 0, 0, 0])

    def test_lines_within_row_share_bank_and_row(self, geom):
        lines = np.arange(geom.lines_per_row)
        bank, row, lir = geom.decompose_line(lines)
        assert (bank == 0).all() and (row == 0).all()
        np.testing.assert_array_equal(lir, lines)

    def test_rejects_out_of_range(self, geom):
        with pytest.raises(ValueError):
            geom.decompose_line(geom.total_lines)
        with pytest.raises(ValueError):
            geom.decompose_line(-1)
        with pytest.raises(ValueError):
            geom.compose_line(geom.num_banks, 0, 0)
        with pytest.raises(ValueError):
            geom.compose_line(0, geom.rows_per_bank, 0)
        with pytest.raises(ValueError):
            geom.compose_line(0, 0, geom.lines_per_row)

    def test_decompose_byte(self, geom):
        addr = 3 * geom.line_bytes + 17
        bank, row, lir, off = geom.decompose_byte(addr)
        assert (bank, row, lir, off) == (0, 0, 3, 17)

    def test_ar_set_mapping(self, geom):
        assert geom.ar_set_of_row(0) == 0
        assert geom.ar_set_of_row(127) == 0
        assert geom.ar_set_of_row(128) == 1
        rows = geom.rows_of_ar_set(1)
        assert rows[0] == 128 and rows[-1] == 255 and len(rows) == 128
        with pytest.raises(ValueError):
            geom.rows_of_ar_set(geom.ar_sets_per_bank)
