"""Retention/decay model and integrity tests (incl. failure injection)."""

import numpy as np
import pytest

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshEngine
from repro.dram.retention import RetentionTracker
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=128, rows_per_ar=128, cell_interleave=32)


@pytest.fixture
def layout():
    return CellTypeLayout(interleave=32)


@pytest.fixture
def device(geom, layout):
    return DramDevice(geom, layout)


@pytest.fixture
def codec(geom, layout):
    return ValueTransformCodec(
        CellTypePredictor.from_layout(layout, geom.rows_per_bank)
    )


TRET = 0.032


class TestRetentionTracker:
    def test_rejects_nonpositive_window(self, device):
        with pytest.raises(ValueError):
            RetentionTracker(device, 0.0)

    def test_no_overdue_right_after_refresh(self, device):
        tracker = RetentionTracker(device, TRET)
        for bank in device.banks:
            bank.refresh_rows(np.arange(device.geometry.rows_per_bank), 0.0)
        assert tracker.overdue(TRET * 0.9) == []
        assert tracker.verify_no_loss(TRET * 0.9)

    def test_overdue_after_window(self, device):
        tracker = RetentionTracker(device, TRET)
        assert len(tracker.overdue(TRET * 1.5)) == device.geometry.total_rows * 8

    def test_discharged_rows_survive_decay(self, device, codec):
        """Zero content decays to itself: skipping discharged rows is safe."""
        geom = device.geometry
        lines = np.zeros((geom.lines_per_row, 8), dtype=np.uint64)
        for row in range(geom.rows_per_bank):
            device.write_row(0, row, codec.encode_row(lines, row))
        tracker = RetentionTracker(device, TRET)
        report = tracker.decay(TRET * 2)
        assert report.overdue_slices > 0
        # bank 0 was populated with discharged content -> no loss there
        assert all(e.bank != 0 for e in report.corrupted)

    def test_charged_rows_corrupt_on_decay(self, device, codec):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 2**64, size=(device.geometry.lines_per_row, 8),
                             dtype=np.uint64)
        device.write_row(0, 5, codec.encode_row(lines, 5))
        tracker = RetentionTracker(device, TRET)
        report = tracker.decay(TRET * 2)
        assert any(e.bank == 0 and e.row == 5 for e in report.corrupted)

    def test_decay_drives_cells_to_discharged_pattern(self, device, codec):
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 2**64, size=(device.geometry.lines_per_row, 8),
                             dtype=np.uint64)
        device.write_row(0, 40, codec.encode_row(lines, 40))  # anti row (32..63)
        assert device.banks[0].is_anti_row(40)
        tracker = RetentionTracker(device, TRET)
        tracker.decay(TRET * 2)
        # anti row decays to all-one stored bits
        assert (device.banks[0].data[40] == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_decayed_row_reads_back_wrong(self, device, codec):
        """Corruption is visible through the codec round trip."""
        rng = np.random.default_rng(2)
        lines = rng.integers(0, 2**64, size=(device.geometry.lines_per_row, 8),
                             dtype=np.uint64)
        device.write_row(0, 5, codec.encode_row(lines, 5))
        tracker = RetentionTracker(device, TRET)
        tracker.decay(TRET * 2)
        decoded = codec.decode_row(device.read_row(0, 5), 5)
        assert not np.array_equal(decoded, lines)


class TestIntegrityWithEngine:
    def _populate(self, device, codec, rng, zero_fraction=0.5):
        geom = device.geometry
        for bank in range(geom.num_banks):
            for row in range(geom.rows_per_bank):
                if rng.random() < zero_fraction:
                    lines = np.zeros((geom.lines_per_row, 8), dtype=np.uint64)
                else:
                    lines = rng.integers(0, 2**64, size=(geom.lines_per_row, 8),
                                         dtype=np.uint64)
                device.write_row(bank, row, codec.encode_row(lines, row))

    def test_zero_refresh_never_loses_data(self, device, codec):
        """End-to-end invariant: skipping must never corrupt memory."""
        rng = np.random.default_rng(3)
        self._populate(device, codec, rng)
        engine = RefreshEngine(device)
        tracker = RetentionTracker(device, engine.timing.tret_s)
        t = 0.0
        for _ in range(4):
            engine.run_window(t)
            t += engine.timing.tret_s
            report = tracker.decay(t)
            assert not report.data_loss

    def test_forced_skip_of_charged_rows_corrupts(self, device, codec):
        """Failure injection: lying in the status table loses data."""
        rng = np.random.default_rng(4)
        self._populate(device, codec, rng, zero_fraction=0.0)
        engine = RefreshEngine(device)
        engine.run_window(0.0)
        # Corrupt the tracker: claim every group is discharged.
        for bank in range(device.geometry.num_banks):
            engine.status_table.write_vector(
                bank, 0, np.ones(device.geometry.rows_per_ar, dtype=bool)
            )
        t = engine.timing.tret_s
        engine.run_window(t)
        tracker = RetentionTracker(device, engine.timing.tret_s)
        report = tracker.decay(t + engine.timing.tret_s)
        assert report.data_loss
