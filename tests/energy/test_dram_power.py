"""Tests for the DDR4 power model (Fig. 4 shape)."""

import pytest

from repro.dram.timing import TemperatureMode
from repro.energy.dram_power import DramPowerModel


@pytest.fixture
def model():
    return DramPowerModel()


class TestTrfc:
    def test_known_densities(self, model):
        assert model.trfc_ns(4) == 260.0
        assert model.trfc_ns(16) == 550.0

    def test_interpolation(self, model):
        assert 260.0 < model.trfc_ns(6) < 350.0

    def test_out_of_range_rejected(self, model):
        with pytest.raises(ValueError):
            model.trfc_ns(128)

    def test_trefi_halves_at_extended(self, model):
        assert model.trefi_ns(TemperatureMode.EXTENDED) == pytest.approx(
            model.trefi_ns(TemperatureMode.NORMAL) / 2
        )


class TestDevicePower:
    def test_refresh_share_grows_with_density(self, model):
        shares = [
            model.device_power(d, TemperatureMode.EXTENDED).refresh_share
            for d in (1, 2, 4, 8, 16)
        ]
        assert shares == sorted(shares)

    def test_extended_temperature_increases_share(self, model):
        for density in (4, 8, 16):
            normal = model.device_power(density, TemperatureMode.NORMAL)
            extended = model.device_power(density, TemperatureMode.EXTENDED)
            assert extended.refresh_share > normal.refresh_share

    def test_paper_headline_16gb_over_half(self, model):
        """Fig. 4: at 32 ms retention a 16 Gb device spends >50% on refresh."""
        breakdown = model.device_power(16, TemperatureMode.EXTENDED)
        assert breakdown.refresh_share > 0.5

    def test_refresh_scale_shrinks_refresh_only(self, model):
        full = model.device_power(8, TemperatureMode.EXTENDED)
        half = model.device_power(8, TemperatureMode.EXTENDED,
                                  refresh_scale=0.5)
        assert half.refresh_mw == pytest.approx(full.refresh_mw / 2)
        assert half.background_mw == full.background_mw

    def test_total_is_sum_of_parts(self, model):
        b = model.device_power(8)
        assert b.total_mw == pytest.approx(
            b.background_mw + b.activate_mw + b.read_mw + b.write_mw
            + b.refresh_mw
        )


class TestRowRefreshEnergy:
    def test_per_row_energy_positive_and_scales(self, model):
        e128 = model.refresh_energy_per_row_nj(28.0, rows_per_ar=128)
        e64 = model.refresh_energy_per_row_nj(28.0, rows_per_ar=64)
        assert e128 > 0
        assert e64 == pytest.approx(2 * e128)

    def test_table2_magnitude(self, model):
        """(IDD5-IDD3N)*VDD*tRFC*8chips/128rows = ~0.235 nJ per row."""
        e = model.refresh_energy_per_row_nj(28.0, 128, 8)
        assert e == pytest.approx((120 - 8) * 1.2 * 28 * 1e-3 * 8 / 128)
