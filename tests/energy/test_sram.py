"""Tests for the CACTI-anchored SRAM model."""

import pytest

from repro.energy.sram import SramModel


@pytest.fixture
def model():
    return SramModel()


class TestSramModel:
    def test_anchor_points_exact(self, model):
        assert model.leakage_mw(8 << 10) == pytest.approx(2.71)
        assert model.leakage_mw(1 << 20) == pytest.approx(337.14)
        assert model.area_mm2(8 << 10) == pytest.approx(0.076)

    def test_monotone_in_capacity(self, model):
        sizes = [1 << 10, 8 << 10, 64 << 10, 1 << 20]
        leaks = [model.leakage_mw(s) for s in sizes]
        assert leaks == sorted(leaks)

    def test_interpolation_between_anchors(self, model):
        mid = model.leakage_mw(128 << 10)
        assert 2.71 < mid < 337.14

    def test_zero_capacity(self, model):
        assert model.leakage_mw(0) == 0.0
        assert model.area_mm2(0) == 0.0

    def test_estimate_bundle(self, model):
        est = model.estimate(8 << 10)
        assert est.capacity_bytes == 8 << 10
        assert est.leakage_mw == pytest.approx(2.71)
        assert est.area_mm2 == pytest.approx(0.076)

    def test_naive_vs_optimised_ratio(self, model):
        """The paper's 337.14 vs 2.71 mW comparison: >100x saving."""
        ratio = model.leakage_mw(1 << 20) / model.leakage_mw(8 << 10)
        assert ratio > 100
