"""Tests for whole-system energy accounting (Fig. 15 machinery)."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshStats
from repro.dram.timing import TimingParams
from repro.energy.accounting import EBDI_ENERGY_PJ, EnergyAccountant


@pytest.fixture
def accountant():
    geometry = DramGeometry(rows_per_bank=512, rows_per_ar=128,
                            cell_interleave=64)
    return EnergyAccountant(geometry, TimingParams(),
                            reference_geometry=DramGeometry.paper_config())


class TestEnergyAccountant:
    def test_no_skipping_normalizes_above_one(self, accountant):
        """Without skipping, overheads make ZERO-REFRESH cost >= baseline."""
        stats = RefreshStats(groups_refreshed=4096, groups_skipped=0,
                             windows=1, ar_commands=32, status_reads=16,
                             status_writes=16)
        report = accountant.report(stats, ebdi_ops=1000)
        assert report.normalized() >= 1.0

    def test_skipping_reduces_energy(self, accountant):
        stats = RefreshStats(groups_refreshed=1000, groups_skipped=3096,
                             windows=1, ar_commands=32, status_reads=30,
                             status_writes=2)
        report = accountant.report(stats, ebdi_ops=1000)
        assert report.normalized() < 0.5

    def test_energy_reduction_trails_refresh_reduction(self, accountant):
        """Fig. 15's key property: overheads eat a little of the saving."""
        stats = RefreshStats(groups_refreshed=2500, groups_skipped=1596,
                             windows=1, ar_commands=32, status_reads=28,
                             status_writes=4)
        report = accountant.report(stats, ebdi_ops=5000)
        assert report.normalized() > stats.normalized_refresh()
        # ... but the gap stays bounded (the realistic-run gap of a few
        # percent is asserted by the integration tests)
        assert report.normalized() - stats.normalized_refresh() < 0.15

    def test_ebdi_energy_is_15pj_per_op(self, accountant):
        stats = RefreshStats(groups_refreshed=1, groups_skipped=0, windows=1)
        a = accountant.report(stats, ebdi_ops=0)
        b = accountant.report(stats, ebdi_ops=1000)
        assert b.ebdi_nj - a.ebdi_nj == pytest.approx(1000 * EBDI_ENERGY_PJ * 1e-3)

    def test_sram_leakage_scales_with_duration(self, accountant):
        stats1 = RefreshStats(groups_refreshed=1, windows=1)
        stats2 = RefreshStats(groups_refreshed=1, windows=2)
        r1 = accountant.report(stats1)
        r2 = accountant.report(stats2)
        assert r2.sram_leakage_nj == pytest.approx(2 * r1.sram_leakage_nj)

    def test_status_access_under_one_percent_per_ar(self, accountant):
        """One table access per AR must cost <1% of the 128 refreshes it
        governs (the paper's claim that table reads barely matter)."""
        per_ar_refresh = 128 * accountant.row_refresh_nj
        assert accountant.status_row_access_nj / per_ar_refresh < 0.01

    def test_empty_stats(self, accountant):
        report = accountant.report(RefreshStats())
        assert report.normalized() == 1.0

    def test_overhead_totals(self, accountant):
        stats = RefreshStats(groups_refreshed=100, groups_skipped=100,
                             windows=1, status_reads=5, status_writes=5)
        report = accountant.report(stats, ebdi_ops=10)
        assert report.overhead_nj == pytest.approx(
            report.ebdi_nj + report.sram_leakage_nj + report.status_access_nj
        )
        assert report.total_nj == pytest.approx(
            report.refresh_nj + report.overhead_nj
        )
