"""Tests for true/anti cell layout and identification."""

import numpy as np
import pytest

from repro.transform.celltype import (
    CellType,
    CellTypeLayout,
    CellTypePredictor,
    identify_cell_types,
)


class TestCellType:
    def test_discharged_bit(self):
        assert CellType.TRUE.discharged_bit == 0
        assert CellType.ANTI.discharged_bit == 1

    def test_flipped(self):
        assert CellType.TRUE.flipped() is CellType.ANTI
        assert CellType.ANTI.flipped() is CellType.TRUE


class TestCellTypeLayout:
    def test_default_interleave_is_512(self):
        layout = CellTypeLayout()
        assert layout.interleave == 512
        assert layout.cell_type(0) is CellType.TRUE
        assert layout.cell_type(511) is CellType.TRUE
        assert layout.cell_type(512) is CellType.ANTI
        assert layout.cell_type(1024) is CellType.TRUE

    def test_phase_flips_blocks(self):
        layout = CellTypeLayout(interleave=4, phase=1)
        assert layout.cell_type(0) is CellType.ANTI
        assert layout.cell_type(4) is CellType.TRUE

    def test_vectorised_matches_scalar(self):
        layout = CellTypeLayout(interleave=8)
        rows = np.arange(64)
        vec = layout.cell_types(rows)
        for row in rows:
            assert CellType(int(vec[row])) is layout.cell_type(int(row))

    def test_equality(self):
        assert CellTypeLayout(8, 0) == CellTypeLayout(8, 0)
        assert CellTypeLayout(8, 0) != CellTypeLayout(8, 1)
        assert CellTypeLayout(8, 0) != CellTypeLayout(16, 0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CellTypeLayout(interleave=0)
        with pytest.raises(ValueError):
            CellTypeLayout(phase=2)


class TestIdentification:
    def test_perfect_identification(self):
        layout = CellTypeLayout(interleave=16)
        pred = identify_cell_types(layout, 256)
        np.testing.assert_array_equal(pred, layout.cell_types(np.arange(256)))

    def test_error_rate_injects_flips(self):
        layout = CellTypeLayout(interleave=16)
        rng = np.random.default_rng(9)
        pred = identify_cell_types(layout, 10_000, error_rate=0.1, rng=rng)
        truth = layout.cell_types(np.arange(10_000))
        error = float(np.mean(pred != truth))
        assert 0.05 < error < 0.15

    def test_rejects_bad_error_rate(self):
        with pytest.raises(ValueError):
            identify_cell_types(CellTypeLayout(), 8, error_rate=1.5)


class TestCellTypePredictor:
    def test_from_layout_perfect(self):
        layout = CellTypeLayout(interleave=4)
        predictor = CellTypePredictor.from_layout(layout, 64)
        assert predictor.accuracy(layout) == 1.0
        assert predictor.predict(0) is CellType.TRUE
        assert predictor.predict(4) is CellType.ANTI
        assert len(predictor) == 64

    def test_noisy_predictor_accuracy(self):
        layout = CellTypeLayout(interleave=4)
        rng = np.random.default_rng(2)
        predictor = CellTypePredictor.from_layout(layout, 5000, error_rate=0.2, rng=rng)
        assert 0.7 < predictor.accuracy(layout) < 0.9

    def test_rejects_bad_predictions(self):
        with pytest.raises(ValueError):
            CellTypePredictor(np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            CellTypePredictor(np.zeros((2, 2)))
