"""Tests for the BDI reference compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.bdi import LINE_BYTES, BdiCompressor
from repro.workloads.synthetic import generate_lines


@pytest.fixture
def bdi():
    return BdiCompressor()


class TestSchemes:
    def test_zero_line(self, bdi):
        result = bdi.compress(np.zeros(8, dtype=np.uint64))
        assert result.scheme == "zeros"
        assert result.compressed_bytes == 1
        assert result.ratio == 64.0

    def test_repeated_line(self, bdi):
        line = np.full(8, 0xDEADBEEF, dtype=np.uint64)
        result = bdi.compress(line)
        assert result.scheme == "repeated"
        assert result.compressed_bytes == 8

    def test_base8_delta1(self, bdi):
        base = np.uint64(1 << 40)
        line = base + np.arange(8, dtype=np.uint64)
        result = bdi.compress(line)
        assert result.scheme == "base8-delta1"
        assert result.compressed_bytes == 8 + 8 + 1

    def test_base8_negative_deltas(self, bdi):
        base = np.uint64(1000)
        line = base - np.arange(8, dtype=np.uint64)
        result = bdi.compress(line)
        assert result.scheme == "base8-delta1"

    def test_immediates_mix_with_wide_base(self, bdi):
        """Small immediates coexist with one wide base (dual-base)."""
        line = np.array([5, 1 << 50, (1 << 50) + 3, 7,
                         2, (1 << 50) + 9, 0, 1], dtype=np.uint64)
        result = bdi.compress(line)
        assert result.scheme.startswith("base8")

    def test_base4(self, bdi):
        words32 = (np.uint64(0x12345600) + np.arange(16, dtype=np.uint64))
        line = np.ascontiguousarray(words32.astype("<u4")).view("<u8")
        result = bdi.compress(line)
        assert result.scheme in ("base4-delta1", "base4-delta2")
        assert result.compressed_bytes < 32

    def test_random_line_uncompressed(self, bdi):
        rng = np.random.default_rng(0)
        line = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        result = bdi.compress(line)
        assert result.scheme == "uncompressed"
        assert result.ratio == 1.0


class TestRoundTrip:
    @pytest.mark.parametrize("cls", ["zero", "uniform32", "smallint8",
                                     "smallint16", "pointer", "int32",
                                     "medium", "float64", "random",
                                     "padded", "text"])
    def test_roundtrip_content_classes(self, bdi, cls):
        rng = np.random.default_rng(1)
        lines = generate_lines(cls, 64, rng)
        for line in lines:
            result = bdi.compress(line)
            np.testing.assert_array_equal(bdi.decompress(result), line)

    @settings(max_examples=100)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=8, max_size=8))
    def test_roundtrip_property(self, words):
        bdi = BdiCompressor()
        line = np.array(words, dtype=np.uint64)
        result = bdi.compress(line)
        np.testing.assert_array_equal(bdi.decompress(result), line)
        assert 1 <= result.compressed_bytes <= LINE_BYTES


class TestAggregate:
    def test_ratio_orders_by_regularity(self, bdi):
        rng = np.random.default_rng(2)
        uniform = bdi.compression_ratio(generate_lines("uniform32", 64, rng))
        pointer = bdi.compression_ratio(generate_lines("pointer", 64, rng))
        random_ = bdi.compression_ratio(generate_lines("random", 64, rng))
        assert uniform > pointer > random_
        assert random_ == pytest.approx(1.0, abs=0.05)
