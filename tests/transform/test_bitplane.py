"""Tests for the bit-plane transposition stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.bitplane import BitPlaneTransform
from repro.transform.celltype import CellType
from repro.transform.ebdi import EbdiCodec


@pytest.fixture
def transform():
    return BitPlaneTransform(word_bytes=8, line_bytes=64)


class TestBitPlaneTransform:
    def test_base_word_untouched(self, transform):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 2**64, size=(16, 8), dtype=np.uint64)
        out = transform.apply(lines)
        np.testing.assert_array_equal(out[:, 0], lines[:, 0])

    def test_zero_deltas_stay_zero(self, transform):
        lines = np.zeros((4, 8), dtype=np.uint64)
        lines[:, 0] = 0xABCDEF
        out = transform.apply(lines)
        assert not out[:, 1:].any()

    def test_all_ones_stay_all_ones(self, transform):
        lines = np.full((2, 8), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        out = transform.apply(lines)
        assert (out == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_roundtrip(self, transform):
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 2**64, size=(128, 8), dtype=np.uint64)
        np.testing.assert_array_equal(transform.invert(transform.apply(lines)), lines)

    def test_popcount_preserved(self, transform):
        rng = np.random.default_rng(5)
        lines = rng.integers(0, 2**64, size=(32, 8), dtype=np.uint64)
        out = transform.apply(lines)

        def popcount(arr):
            return int(np.unpackbits(np.ascontiguousarray(arr).view(np.uint8)).sum())

        assert popcount(out) == popcount(lines)

    def test_plane_layout(self, transform):
        """Bit j of delta word w must land at flat position j*7 + w."""
        lines = np.zeros((1, 8), dtype=np.uint64)
        w, j = 3, 10  # delta word index 3 == line word 4
        lines[0, 1 + w] = np.uint64(1) << np.uint64(j)
        out = transform.apply(lines)
        flat = j * 7 + w
        out_word, out_bit = 1 + flat // 64, flat % 64
        expected = np.zeros((1, 8), dtype=np.uint64)
        expected[0, out_word] = np.uint64(1) << np.uint64(out_bit)
        np.testing.assert_array_equal(out, expected)

    def test_narrow_deltas_concentrate_in_low_words(self, transform):
        """Deltas below 2^9 leave words 2..7 entirely zero (7*9=63 bits)."""
        rng = np.random.default_rng(7)
        lines = np.zeros((64, 8), dtype=np.uint64)
        lines[:, 0] = rng.integers(0, 2**64, size=64, dtype=np.uint64)
        lines[:, 1:] = rng.integers(0, 2**9, size=(64, 7), dtype=np.uint64)
        out = transform.apply(lines)
        assert not out[:, 2:].any()
        assert out[:, 1].any()

    def test_after_ebdi_zero_biased_lines_have_discharged_words(self, transform):
        """The EBDI + bit-plane pipeline leaves >= 6 of 8 words zero for
        lines with byte-sized value locality."""
        ebdi = EbdiCodec()
        rng = np.random.default_rng(11)
        base = rng.integers(0, 2**63, size=(100, 1), dtype=np.uint64)
        jitter = rng.integers(0, 128, size=(100, 8), dtype=np.uint64)
        lines = base + jitter
        out = transform.apply(ebdi.encode(lines, CellType.TRUE))
        zero_words = (out == 0).sum(axis=1)
        assert (zero_words >= 6).all()

    def test_rejects_bad_shape(self, transform):
        with pytest.raises(ValueError, match="expected shape"):
            transform.apply(np.zeros((2, 9), dtype=np.uint64))

    def test_rejects_bad_dtype(self, transform):
        with pytest.raises(TypeError, match="expected dtype"):
            transform.apply(np.zeros((2, 8), dtype=np.int64))

    def test_word_size_4(self):
        t = BitPlaneTransform(word_bytes=4, line_bytes=64)
        rng = np.random.default_rng(13)
        lines = rng.integers(0, 2**32, size=(32, 16), dtype=np.uint32)
        np.testing.assert_array_equal(t.invert(t.apply(lines)), lines)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=8, max_size=8))
    def test_roundtrip_property(self, words):
        t = BitPlaneTransform()
        lines = np.array([words], dtype=np.uint64)
        np.testing.assert_array_equal(t.invert(t.apply(lines)), lines)
