"""Tests for the composed value-transformation codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import StageSelection, ValueTransformCodec


def make_codec(stages=StageSelection.full(), interleave=16, num_rows=256,
               error_rate=0.0, seed=0):
    layout = CellTypeLayout(interleave=interleave)
    rng = np.random.default_rng(seed)
    predictor = CellTypePredictor.from_layout(layout, num_rows, error_rate, rng)
    return ValueTransformCodec(predictor, stages=stages), layout


class TestStageSelection:
    def test_full_enables_everything(self):
        s = StageSelection.full()
        assert s.ebdi and s.bitplane and s.rotation and s.celltype_aware

    def test_none_disables_everything(self):
        s = StageSelection.none()
        assert not (s.ebdi or s.bitplane or s.rotation or s.celltype_aware)


class TestValueTransformCodec:
    @pytest.mark.parametrize("row", [0, 1, 15, 16, 17, 255])
    def test_roundtrip_random_lines(self, row):
        codec, _ = make_codec()
        rng = np.random.default_rng(row)
        lines = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        chips = codec.encode_row(lines, row)
        np.testing.assert_array_equal(codec.decode_row(chips, row), lines)

    def test_zero_lines_store_discharged_true_row(self):
        """A zero page on a true-cell row stores as all-zero bits."""
        codec, layout = make_codec()
        row = 0
        assert layout.cell_type(row).value == 0
        lines = np.zeros((64, 8), dtype=np.uint64)
        chips = codec.encode_row(lines, row)
        assert not chips.any()

    def test_zero_lines_store_discharged_anti_row(self):
        """A zero page on an anti-cell row stores as all-one bits."""
        codec, layout = make_codec()
        row = 16  # first anti block with interleave=16
        assert layout.cell_type(row).value == 1
        lines = np.zeros((64, 8), dtype=np.uint64)
        chips = codec.encode_row(lines, row)
        assert (chips == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_without_celltype_awareness_anti_rows_charge(self):
        codec, _ = make_codec(stages=StageSelection(celltype_aware=False))
        lines = np.zeros((64, 8), dtype=np.uint64)
        chips = codec.encode_row(lines, 16)  # anti row
        assert not chips.any()  # stored zeros == charged anti cells

    def test_narrow_value_lines_leave_most_chips_discharged(self):
        """Value-local lines put all non-zero data on 2 of 8 chips."""
        codec, _ = make_codec()
        rng = np.random.default_rng(4)
        base = rng.integers(0, 2**62, size=(64, 1), dtype=np.uint64)
        lines = base + rng.integers(0, 256, size=(64, 8), dtype=np.uint64)
        row = 0  # true-cell row
        chips = codec.encode_row(lines, row)
        discharged_chips = [int(c) for c in range(8) if not chips[c].any()]
        assert len(discharged_chips) == 6

    def test_roundtrip_under_misprediction(self):
        """A wrong cell-type table must never corrupt data."""
        codec, layout = make_codec(error_rate=0.5, seed=3)
        assert codec.predictor.accuracy(layout) < 1.0
        rng = np.random.default_rng(8)
        lines = rng.integers(0, 2**64, size=(32, 8), dtype=np.uint64)
        for row in range(0, 256, 17):
            chips = codec.encode_row(lines, row)
            np.testing.assert_array_equal(codec.decode_row(chips, row), lines)

    @pytest.mark.parametrize(
        "stages",
        [
            StageSelection.none(),
            StageSelection(ebdi=True, bitplane=False, rotation=False, celltype_aware=False),
            StageSelection(ebdi=True, bitplane=True, rotation=False, celltype_aware=False),
            StageSelection(ebdi=True, bitplane=True, rotation=True, celltype_aware=False),
            StageSelection.full(),
        ],
    )
    def test_roundtrip_all_stage_subsets(self, stages):
        codec, _ = make_codec(stages=stages)
        rng = np.random.default_rng(5)
        lines = rng.integers(0, 2**64, size=(16, 8), dtype=np.uint64)
        for row in (0, 3, 16, 21):
            chips = codec.encode_row(lines, row)
            np.testing.assert_array_equal(codec.decode_row(chips, row), lines)

    def test_transform_untransform_roundtrip(self):
        codec, _ = make_codec()
        rng = np.random.default_rng(6)
        lines = rng.integers(0, 2**64, size=(16, 8), dtype=np.uint64)
        for row in (0, 16):
            enc = codec.transform_lines(lines, row)
            np.testing.assert_array_equal(codec.untransform_lines(enc, row), lines)

    @settings(max_examples=25, deadline=None)
    @given(
        row=st.integers(min_value=0, max_value=255),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_roundtrip_property(self, row, seed):
        codec, _ = make_codec()
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 2**64, size=(4, 8), dtype=np.uint64)
        chips = codec.encode_row(lines, row)
        np.testing.assert_array_equal(codec.decode_row(chips, row), lines)
