"""Tests for the data-rotation stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.rotation import RotationMapper


@pytest.fixture
def mapper():
    return RotationMapper(num_chips=8, word_bytes=8, line_bytes=64)


class TestRotationMapper:
    def test_rotation_amount_cycles_with_rows(self, mapper):
        assert mapper.rotation_amount(0) == 0
        assert mapper.rotation_amount(3) == 3
        assert mapper.rotation_amount(8) == 0
        assert mapper.rotation_amount(11) == 3

    def test_chip_of_word_row0_is_identity(self, mapper):
        for w in range(8):
            assert mapper.chip_of_word(w, 0) == w

    def test_chip_of_word_rotates_by_row(self, mapper):
        # Word 0 (base) of row 3 lands on chip 3.
        assert mapper.chip_of_word(0, 3) == 3
        assert mapper.chip_of_word(7, 3) == 2

    def test_each_chip_holds_single_word_position(self, mapper):
        """With 8 words and 8 chips, a chip row is word-homogeneous."""
        for row in range(16):
            for chip in range(8):
                words = mapper.words_of_chip(chip, row)
                assert len(words) == 1
                assert mapper.chip_of_word(int(words[0]), row) == chip

    def test_scatter_gather_roundtrip(self, mapper):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        for row in (0, 1, 7, 13):
            chips = mapper.scatter(lines, row)
            assert chips.shape == (8, 64, 1)
            np.testing.assert_array_equal(mapper.gather(chips, row), lines)

    def test_scatter_places_base_words_diagonally(self, mapper):
        """Base word (word 0) of row R sits on chip R mod 8."""
        lines = np.zeros((4, 8), dtype=np.uint64)
        lines[:, 0] = np.arange(1, 5, dtype=np.uint64)  # tag base words
        for row in range(8):
            chips = mapper.scatter(lines, row)
            base_chip = row % 8
            np.testing.assert_array_equal(chips[base_chip][:, 0], lines[:, 0])
            for chip in range(8):
                if chip != base_chip:
                    assert not chips[chip].any()

    def test_disabled_rotation_is_identity_mapping(self):
        mapper = RotationMapper(num_chips=8, rotate=False)
        for row in range(16):
            assert mapper.rotation_amount(row) == 0
            assert mapper.chip_of_word(2, row) == 2

    def test_more_words_than_chips(self):
        mapper = RotationMapper(num_chips=8, word_bytes=4, line_bytes=64)
        assert mapper.words_per_chip == 2
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 2**32, size=(16, 16), dtype=np.uint32)
        for row in (0, 5):
            chips = mapper.scatter(lines, row)
            assert chips.shape == (8, 16, 2)
            np.testing.assert_array_equal(mapper.gather(chips, row), lines)

    def test_word_homogeneity_with_multiple_words_per_chip(self):
        """Even with 2 words/chip, a chip's word positions are fixed per row."""
        mapper = RotationMapper(num_chips=8, word_bytes=4, line_bytes=64)
        for row in range(8):
            for chip in range(8):
                words = mapper.words_of_chip(chip, row)
                assert len(words) == 2
                assert (words % 8 == words[0] % 8).all()

    def test_rejects_uneven_word_distribution(self):
        with pytest.raises(ValueError, match="spread evenly"):
            RotationMapper(num_chips=3, word_bytes=8, line_bytes=64)

    def test_rejects_bad_gather_shape(self, mapper):
        with pytest.raises(ValueError, match="expected chip data"):
            mapper.gather(np.zeros((4, 4, 1), dtype=np.uint64), 0)

    @settings(max_examples=25)
    @given(
        row=st.integers(min_value=0, max_value=1000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_roundtrip_property(self, row, seed):
        mapper = RotationMapper()
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 2**64, size=(8, 8), dtype=np.uint64)
        np.testing.assert_array_equal(
            mapper.gather(mapper.scatter(lines, row), row), lines
        )
