"""Tests for the BPC reference model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.bpc import BpcCompressor
from repro.workloads.synthetic import generate_lines


@pytest.fixture
def bpc():
    return BpcCompressor()


class TestDeltaTransform:
    def test_roundtrip(self, bpc):
        rng = np.random.default_rng(0)
        line = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        np.testing.assert_array_equal(
            bpc.inverse_delta(bpc.delta_transform(line)), line
        )

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=8, max_size=8))
    def test_roundtrip_property(self, words):
        bpc = BpcCompressor()
        line = np.array(words, dtype=np.uint64)
        np.testing.assert_array_equal(
            bpc.inverse_delta(bpc.delta_transform(line)), line
        )

    def test_arithmetic_sequence_collapses(self, bpc):
        line = np.arange(100, 108, dtype=np.uint64)
        deltas = bpc.delta_transform(line)
        assert (deltas[1:] == 1).all()


class TestBitPlanes:
    def test_plane_extraction(self, bpc):
        deltas = np.zeros(8, dtype=np.uint64)
        deltas[3] = np.uint64(1) << np.uint64(17)
        planes = bpc.bit_planes(deltas)
        assert planes.shape == (64, 7)
        assert planes[17, 2] == 1  # delta word index 3 -> tail index 2
        assert planes.sum() == 1


class TestCompression:
    def test_zero_line_tiny(self, bpc):
        result = bpc.compress(np.zeros(8, dtype=np.uint64))
        assert result.zero_planes == 64
        assert result.compressed_bits == 64 + 7  # base word + one run

    def test_arithmetic_sequence_compresses_well(self, bpc):
        line = (np.uint64(1 << 50) + 8 * np.arange(8, dtype=np.uint64))
        result = bpc.compress(line)
        assert result.ratio > 4

    def test_random_line_does_not_compress(self, bpc):
        rng = np.random.default_rng(1)
        line = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        result = bpc.compress(line)
        assert result.ratio < 1.2

    def test_ratio_ordering_by_content_class(self, bpc):
        rng = np.random.default_rng(2)
        smallint = bpc.compression_ratio(generate_lines("smallint8", 32, rng))
        medium = bpc.compression_ratio(generate_lines("medium", 32, rng))
        random_ = bpc.compression_ratio(generate_lines("random", 32, rng))
        assert smallint > medium > random_

    def test_size_bounded(self, bpc):
        rng = np.random.default_rng(3)
        # worst case: base word + 64 raw DBX planes (2+7 bits each)
        worst = 64 + 64 * 9
        for cls in ("zero", "float64", "random", "text"):
            for line in generate_lines(cls, 16, rng):
                result = bpc.compress(line)
                assert 64 < result.compressed_bits <= worst

    def test_dbx_roundtrip(self, bpc):
        rng = np.random.default_rng(4)
        deltas = rng.integers(0, 2**64, size=8, dtype=np.uint64)
        planes = bpc.bit_planes(deltas)
        np.testing.assert_array_equal(
            bpc.inverse_dbx(bpc.dbx_transform(planes)), planes
        )

    def test_dbx_collapses_sign_extension(self, bpc):
        """Small signed deltas (mixed signs) produce long zero DBX runs."""
        line = np.uint64(1 << 40) + np.array(
            [0, 3, 1, 5, 2, 7, 4, 6], dtype=np.uint64)
        result = bpc.compress(line)
        assert result.zero_planes > 50
