"""Unit and property tests for the EBDI stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transform.celltype import CellType
from repro.transform.ebdi import EbdiCodec, word_dtype, zigzag_decode, zigzag_encode


class TestZigzag:
    def test_small_values_map_to_small_codes(self):
        values = np.array([0, -1, 1, -2, 2, -3, 3], dtype=np.int64)
        expected = np.array([0, 1, 2, 3, 4, 5, 6], dtype=np.uint64)
        np.testing.assert_array_equal(zigzag_encode(values), expected)

    def test_sign_is_low_bit(self):
        values = np.array([-5, 5], dtype=np.int64)
        codes = zigzag_encode(values)
        assert codes[0] & 1 == 1  # negative -> odd
        assert codes[1] & 1 == 0  # positive -> even

    def test_roundtrip_extremes(self):
        values = np.array(
            [np.iinfo(np.int64).min, np.iinfo(np.int64).max, 0, -1, 1],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(values)), values)

    def test_small_magnitude_has_leading_zeros(self):
        # |d| <= 127 must fit in 8 bits -> 56 leading zero bits of 64
        values = np.arange(-127, 128, dtype=np.int64)
        codes = zigzag_encode(values)
        assert int(codes.max()) < 256

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        arr = np.array([value], dtype=np.int64)
        assert zigzag_decode(zigzag_encode(arr))[0] == value

    def test_32bit_words(self):
        values = np.array([-1000, 1000], dtype=np.int32)
        codes = zigzag_encode(values)
        assert codes.dtype == np.uint32
        np.testing.assert_array_equal(zigzag_decode(codes), values)


class TestWordDtype:
    def test_known_sizes(self):
        assert word_dtype(8) == np.uint64
        assert word_dtype(4) == np.uint32
        assert word_dtype(2) == np.uint16

    def test_rejects_unknown_size(self):
        with pytest.raises(ValueError, match="unsupported"):
            word_dtype(3)


class TestEbdiCodec:
    @pytest.fixture
    def codec(self):
        return EbdiCodec(word_bytes=8, line_bytes=64)

    def test_geometry(self, codec):
        assert codec.words_per_line == 8
        assert codec.dtype == np.uint64

    def test_zero_line_encodes_to_zero_true(self, codec):
        lines = np.zeros((1, 8), dtype=np.uint64)
        enc = codec.encode(lines, CellType.TRUE)
        assert not enc.any()

    def test_zero_line_encodes_to_ones_anti(self, codec):
        lines = np.zeros((1, 8), dtype=np.uint64)
        enc = codec.encode(lines, CellType.ANTI)
        assert (enc == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_uniform_line_has_zero_deltas(self, codec):
        lines = np.full((1, 8), 0xDEADBEEF, dtype=np.uint64)
        enc = codec.encode(lines, CellType.TRUE)
        assert enc[0, 0] == 0xDEADBEEF
        assert not enc[0, 1:].any()

    def test_nearby_values_give_narrow_deltas(self, codec):
        base = np.uint64(1 << 40)
        lines = (base + np.arange(8, dtype=np.uint64)).reshape(1, 8)
        enc = codec.encode(lines, CellType.TRUE)
        # deltas are 1..7 -> zigzag 2..14, fits in 4 bits
        assert int(enc[0, 1:].max()) < 16

    def test_negative_deltas_stay_narrow(self, codec):
        # Values slightly *below* the base: in two's complement these
        # deltas would be mostly 1 bits; EBDI keeps them narrow.
        base = np.uint64(1000)
        lines = np.array([[base, base - 1, base - 2, base - 3,
                           base - 4, base - 5, base - 6, base - 7]], dtype=np.uint64)
        enc = codec.encode(lines, CellType.TRUE)
        assert int(enc[0, 1:].max()) < 16

    @pytest.mark.parametrize("cell_type", [CellType.TRUE, CellType.ANTI])
    def test_roundtrip_random(self, codec, cell_type):
        rng = np.random.default_rng(42)
        lines = rng.integers(0, 2**64, size=(256, 8), dtype=np.uint64)
        dec = codec.decode(codec.encode(lines, cell_type), cell_type)
        np.testing.assert_array_equal(dec, lines)

    def test_roundtrip_wraparound(self, codec):
        # base near the top of the range, deltas that wrap.
        top = np.uint64(0xFFFFFFFFFFFFFFFF)
        lines = np.array([[top, 0, 1, top - 1, top, 5, top - 5, 2]], dtype=np.uint64)
        for cell_type in CellType:
            dec = codec.decode(codec.encode(lines, cell_type), cell_type)
            np.testing.assert_array_equal(dec, lines)

    def test_word_size_4(self):
        codec = EbdiCodec(word_bytes=4, line_bytes=64)
        assert codec.words_per_line == 16
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 2**32, size=(64, 16), dtype=np.uint32)
        dec = codec.decode(codec.encode(lines, CellType.TRUE), CellType.TRUE)
        np.testing.assert_array_equal(dec, lines)

    def test_rejects_bad_shape(self, codec):
        with pytest.raises(ValueError, match="expected shape"):
            codec.encode(np.zeros((4, 7), dtype=np.uint64), CellType.TRUE)

    def test_rejects_bad_dtype(self, codec):
        with pytest.raises(TypeError, match="expected dtype"):
            codec.encode(np.zeros((4, 8), dtype=np.uint32), CellType.TRUE)

    def test_rejects_indivisible_line(self):
        with pytest.raises(ValueError, match="not a multiple"):
            EbdiCodec(word_bytes=8, line_bytes=60)

    def test_rejects_single_word_line(self):
        with pytest.raises(ValueError, match="at least two"):
            EbdiCodec(word_bytes=8, line_bytes=8)

    def test_delta_bit_width_zero_for_uniform(self, codec):
        lines = np.full((3, 8), 7, dtype=np.uint64)
        np.testing.assert_array_equal(codec.delta_bit_width(lines), [0, 0, 0])

    def test_delta_bit_width_counts_zigzag_bits(self, codec):
        lines = np.zeros((1, 8), dtype=np.uint64)
        lines[0, 0] = 100
        lines[0, 1] = 103  # delta 3 -> zigzag 6 -> 3 bits
        lines[0, 2:] = 100
        assert codec.delta_bit_width(lines)[0] == 3

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=8, max_size=8))
    def test_roundtrip_property(self, words):
        codec = EbdiCodec()
        lines = np.array([words], dtype=np.uint64)
        for cell_type in CellType:
            dec = codec.decode(codec.encode(lines, cell_type), cell_type)
            np.testing.assert_array_equal(dec, lines)
