"""Tests for analysis helpers and report rendering."""

import numpy as np
import pytest

from repro.analysis.report import format_cell, render_kv, render_table
from repro.analysis.stats import (
    empirical_cdf,
    geometric_mean,
    summarize_distribution,
)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empirical_cdf(self):
        samples = np.array([0.1, 0.5, 0.9])
        grid = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(empirical_cdf(samples, grid),
                                   [0.0, 2 / 3, 1.0])

    def test_summarize_distribution(self):
        samples = np.linspace(0, 1, 101)
        summary = summarize_distribution(samples)
        assert summary["mean"] == pytest.approx(0.5)
        assert summary["p50"] == pytest.approx(0.5)
        assert summary["p10"] < summary["p90"]


class TestReport:
    def test_format_cell(self):
        assert format_cell(0.12345) == "0.123"
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"

    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [["a", 1.5], ["long-name", 2]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "long-name" in lines[3]

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_kv(self):
        block = render_kv("Title", [("k", 1.0), ("x", "y")])
        assert block.splitlines()[0] == "Title"
        assert "k: 1.000" in block
        assert "x: y" in block
