"""Tests for the calibration-verification utilities."""

import pytest

from repro.analysis.calibration import (
    CalibrationPoint,
    compare,
    report,
)
from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.workloads.benchmarks import benchmark_profile


class TestCalibrationPoint:
    def test_idle_pages_fold_into_analytic(self):
        point = CalibrationPoint("x", analytic_reduction=0.4,
                                 measured_reduction=0.6,
                                 allocated_fraction=0.5)
        assert point.analytic_with_idle == pytest.approx(0.7)
        assert point.error == pytest.approx(-0.1)
        assert point.relative_error == pytest.approx(-0.1 / 0.7)

    def test_full_allocation(self):
        point = CalibrationPoint("x", 0.4, 0.38)
        assert point.analytic_with_idle == pytest.approx(0.4)


class TestCalibrationReport:
    def test_summary_stats(self):
        points = [
            CalibrationPoint("a", 0.5, 0.45),
            CalibrationPoint("b", 0.2, 0.22),
        ]
        rep = report(points)
        assert rep.mean_error == pytest.approx((-0.05 + 0.02) / 2)
        assert rep.max_abs_error == pytest.approx(0.05)
        assert rep.within(0.05)
        assert not rep.within(0.04)

    def test_rank_correlation_perfect_order(self):
        points = [
            CalibrationPoint("a", 0.5, 0.42),
            CalibrationPoint("b", 0.3, 0.25),
            CalibrationPoint("c", 0.1, 0.08),
        ]
        assert report(points).rank_correlation == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        points = [
            CalibrationPoint("a", 0.5, 0.1),
            CalibrationPoint("b", 0.3, 0.2),
            CalibrationPoint("c", 0.1, 0.5),
        ]
        assert report(points).rank_correlation == pytest.approx(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            report([])


class TestEndToEndCalibration:
    def test_simulation_tracks_analytic_suite_wide(self):
        """Measured reductions follow the analytic ordering closely and
        sit within a bounded (traffic-explained) gap below it."""
        points = []
        for i, name in enumerate(("gemsFDTD", "libquantum", "mcf",
                                  "bzip2", "omnetpp")):
            config = SystemConfig.scaled(total_bytes=8 << 20, rows_per_ar=32,
                                         seed=20 + i)
            system = ZeroRefreshSystem(config)
            profile = benchmark_profile(name)
            system.populate(profile, allocated_fraction=1.0)
            result = system.run_windows(2)
            points.append(compare(profile, result))
        rep = report(points)
        assert rep.rank_correlation > 0.89
        assert -0.12 < rep.mean_error <= 0.02  # under-achieves, bounded
