"""Advisory file locks and the concurrent run-id protocol."""

from repro.store.locks import (
    FileLock,
    acquire_run_id,
    held_lock_files,
    probe_locked,
    run_lock_path,
    stale_lock_files,
)


class TestFileLock:
    def test_acquire_and_release(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert not lock.held
        assert lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_acquire_is_idempotent_while_held(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        assert lock.acquire()
        assert lock.acquire()
        lock.release()

    def test_second_holder_is_excluded(self, tmp_path):
        # flock conflicts are per open-file-description, so two
        # FileLock objects conflict even inside one process — which is
        # exactly what lets these tests prove the cross-process story
        first = FileLock(tmp_path / "a.lock")
        second = FileLock(tmp_path / "a.lock")
        assert first.acquire()
        assert not second.acquire(blocking=False)
        first.release()
        assert second.acquire(blocking=False)
        second.release()

    def test_context_manager(self, tmp_path):
        path = tmp_path / "a.lock"
        with FileLock(path) as lock:
            assert lock.held
            assert probe_locked(path)
        assert not probe_locked(path)

    def test_write_note_round_trips(self, tmp_path):
        path = tmp_path / "a.lock"
        lock = FileLock(path)
        lock.acquire()
        lock.write_note("fig17-deadbeef.2")
        assert path.read_text() == "fig17-deadbeef.2"
        lock.release()

    def test_write_note_without_lock_is_noop(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        lock.write_note("ignored")
        assert not (tmp_path / "a.lock").exists()

    def test_release_without_acquire_is_noop(self, tmp_path):
        FileLock(tmp_path / "a.lock").release()


class TestRunLockPath:
    def test_safe_id_keeps_its_name(self, tmp_path):
        path = run_lock_path(tmp_path, "fig17-abc123")
        assert path.name == "fig17-abc123.lock"
        assert path.parent == tmp_path / "locks"

    def test_unsafe_id_is_hashed(self, tmp_path):
        path = run_lock_path(tmp_path, "run/with:bad chars")
        assert path.name.startswith("x")
        assert "/" not in path.stem and ":" not in path.stem
        # stable: same id, same lock file
        assert path == run_lock_path(tmp_path, "run/with:bad chars")

    def test_empty_id_is_hashed(self, tmp_path):
        assert run_lock_path(tmp_path, "").name.startswith("x")


class TestAcquireRunId:
    def test_free_id_is_claimed_directly(self, tmp_path):
        rid, lock, conflicts = acquire_run_id(tmp_path, "run-a")
        try:
            assert rid == "run-a"
            assert conflicts == 0
            assert lock.held
            assert run_lock_path(tmp_path, "run-a").read_text() == "run-a"
        finally:
            lock.release()

    def test_live_holder_pushes_to_suffix(self, tmp_path):
        rid1, lock1, _ = acquire_run_id(tmp_path, "run-a")
        rid2, lock2, conflicts = acquire_run_id(tmp_path, "run-a")
        try:
            assert rid1 == "run-a"
            assert rid2 == "run-a.2"
            assert conflicts == 1
            assert run_lock_path(tmp_path, "run-a.2").read_text() == "run-a.2"
        finally:
            lock1.release()
            lock2.release()

    def test_released_id_is_reusable(self, tmp_path):
        rid, lock, _ = acquire_run_id(tmp_path, "run-a")
        lock.release()
        rid2, lock2, conflicts = acquire_run_id(tmp_path, "run-a")
        try:
            assert rid2 == "run-a"
            assert conflicts == 0
        finally:
            lock2.release()


class TestLockInventory:
    def test_held_and_stale_are_partitioned(self, tmp_path):
        _, live, _ = acquire_run_id(tmp_path, "live-run")
        dead = FileLock(run_lock_path(tmp_path, "dead-run"))
        dead.acquire()
        dead.release()  # lock file remains, nobody holds it
        try:
            held = [p.stem for p in held_lock_files(tmp_path)]
            stale = [p.stem for p in stale_lock_files(tmp_path)]
            assert held == ["live-run"]
            assert stale == ["dead-run"]
        finally:
            live.release()

    def test_empty_store_has_no_locks(self, tmp_path):
        assert list(held_lock_files(tmp_path)) == []
        assert list(stale_lock_files(tmp_path)) == []
