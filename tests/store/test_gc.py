"""Retention GC: policy pruning that never touches in-progress runs."""

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.journal import RunJournal, journal_path
from repro.obs import ProbeBus, use_probes
from repro.obs.spans import append_spans, span_path
from repro.store.gc import GCPolicy, collect, parse_age
from repro.store.locks import acquire_run_id


def key_for(i: int) -> str:
    return f"{i:02d}" + "a" * 62


def put_entry(cache: ResultCache, i: int, *, age_s: float = 0.0,
              now: float = 1_000_000.0) -> str:
    key = key_for(i)
    cache.put(key, {"result": i, "metrics": {}})
    os.utime(cache.path_for(key), (now - age_s, now - age_s))
    return key


def write_run(root, run_id: str, keys, *, age_s: float = 0.0,
              now: float = 1_000_000.0) -> None:
    journal = RunJournal.start(root, run_id, experiment_id="exp",
                               plan_digest="p", settings_digest="s")
    for key in keys:
        journal.record_done(key)
    journal.close()
    append_spans(root, run_id, [{"span_id": "s1", "name": "run"}])
    stamp = (now - age_s, now - age_s)
    os.utime(journal_path(root, run_id), stamp)
    os.utime(span_path(root, run_id), stamp)


NOW = 1_000_000.0


class TestPolicy:
    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            GCPolicy(max_bytes=-1)
        with pytest.raises(ValueError):
            GCPolicy(max_age_s=-1)
        with pytest.raises(ValueError):
            GCPolicy(keep_runs=-1)

    def test_empty_policy_removes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_entry(cache, 0, age_s=10_000, now=NOW)
        stats = collect(tmp_path, GCPolicy(), now=NOW)
        assert stats["removed"]["entries"] == 0
        assert stats["live_entries"] == 1


class TestAgeAndSize:
    def test_max_age_prunes_only_old_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        old = put_entry(cache, 0, age_s=7200, now=NOW)
        young = put_entry(cache, 1, age_s=60, now=NOW)
        stats = collect(tmp_path, GCPolicy(max_age_s=3600), now=NOW)
        assert stats["removed"]["entries"] == 1
        assert not cache.path_for(old).exists()
        assert cache.path_for(young).exists()

    def test_max_bytes_drops_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            put_entry(cache, i, age_s=1000 - i, now=NOW)  # 0 is oldest
        sizes = [cache.path_for(key_for(i)).stat().st_size
                 for i in range(4)]
        budget = sum(sizes) - 1  # force exactly one removal
        stats = collect(tmp_path, GCPolicy(max_bytes=budget), now=NOW)
        assert stats["removed"]["entries"] == 1
        assert not cache.path_for(key_for(0)).exists()
        assert stats["live_bytes"] <= budget

    def test_dry_run_touches_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = put_entry(cache, 0, age_s=7200, now=NOW)
        stats = collect(tmp_path, GCPolicy(max_age_s=60), now=NOW,
                        dry_run=True)
        assert stats["removed"]["entries"] == 1
        assert cache.path_for(key).exists()


class TestRuns:
    def test_keep_runs_keeps_newest(self, tmp_path):
        ResultCache(tmp_path)
        for i, age in enumerate((300, 200, 100)):  # run-2 newest
            write_run(tmp_path, f"run-{i}", [key_for(i)], age_s=age, now=NOW)
        stats = collect(tmp_path, GCPolicy(keep_runs=1), now=NOW)
        assert stats["removed"]["journals"] == 2
        assert stats["removed"]["spans"] == 2
        assert journal_path(tmp_path, "run-2").exists()
        assert not journal_path(tmp_path, "run-0").exists()
        assert not span_path(tmp_path, "run-1").exists()

    def test_max_age_prunes_runs_and_orphan_spans(self, tmp_path):
        ResultCache(tmp_path)
        write_run(tmp_path, "old-run", [key_for(0)], age_s=7200, now=NOW)
        append_spans(tmp_path, "orphan", [{"span_id": "s", "name": "n"}])
        os.utime(span_path(tmp_path, "orphan"), (NOW - 7200, NOW - 7200))
        stats = collect(tmp_path, GCPolicy(max_age_s=3600), now=NOW)
        assert stats["removed"]["journals"] == 1
        assert stats["removed"]["spans"] == 2  # run's + the orphan


class TestProtection:
    def test_held_lock_protects_run_state(self, tmp_path):
        cache = ResultCache(tmp_path)
        done_key = put_entry(cache, 0, age_s=7200, now=NOW)
        loose_key = put_entry(cache, 1, age_s=7200, now=NOW)
        write_run(tmp_path, "live-run", [done_key], age_s=7200, now=NOW)
        rid, lock, _ = acquire_run_id(tmp_path, "live-run")
        try:
            assert rid == "live-run"
            stats = collect(tmp_path, GCPolicy(max_age_s=60), now=NOW)
            # the loose entry ages out; the locked run's journal, span
            # store and done entry all survive
            assert not cache.path_for(loose_key).exists()
            assert cache.path_for(done_key).exists()
            assert journal_path(tmp_path, "live-run").exists()
            assert span_path(tmp_path, "live-run").exists()
            assert stats["protected_runs"] == 1
            assert stats["protected_entries"] == 1
        finally:
            lock.release()

    def test_held_lock_shields_from_max_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        done_key = put_entry(cache, 0, age_s=1000, now=NOW)  # oldest
        put_entry(cache, 1, age_s=10, now=NOW)
        write_run(tmp_path, "live-run", [done_key], now=NOW)
        _, lock, _ = acquire_run_id(tmp_path, "live-run")
        try:
            collect(tmp_path, GCPolicy(max_bytes=0), now=NOW)
            assert cache.path_for(done_key).exists()
            assert not cache.path_for(key_for(1)).exists()
        finally:
            lock.release()

    def test_stale_locks_are_swept(self, tmp_path):
        _, lock, _ = acquire_run_id(tmp_path, "finished-run")
        lock.release()  # file remains, holder gone
        stats = collect(tmp_path, GCPolicy(), now=NOW)
        assert stats["removed"]["stale_locks"] == 1
        assert list((tmp_path / "locks").glob("*.lock")) == []


class TestObservability:
    def test_gauges_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        put_entry(cache, 0, now=NOW)
        bus = ProbeBus()
        with use_probes(bus):
            collect(tmp_path, GCPolicy(), now=NOW)
        assert bus.counters["store.gc.sweeps"] == 1
        assert bus.gauges["store.gc.live_entries"].last == 1
        assert bus.gauges["store.gc.live_bytes"].last > 0


class TestParseAge:
    @pytest.mark.parametrize("text,expected", [
        ("90", 90.0), ("90s", 90.0), ("15m", 900.0),
        ("6h", 21600.0), ("7d", 604800.0), ("1.5h", 5400.0),
    ])
    def test_units(self, text, expected):
        assert parse_age(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "-5m", "5w"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_age(text)
