"""Two runs sharing one cache dir: disjoint ids, uninterleaved journals."""

import multiprocessing
import time

import pytest

from repro.experiments import REGISTRY
from repro.experiments.engine import Experiment, SimJob
from repro.experiments.journal import (
    default_run_id,
    journal_dir,
    load_state,
)
from repro.experiments.lifecycle import RunRequest, execute
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.obs import ProbeBus
from repro.store.locks import acquire_run_id

MICRO = ExperimentSettings(
    memory_bytes=4 << 20, windows=1, benchmarks=("alpha", "beta", "gamma"),
    rows_per_ar=32, seed=3,
)

SLOW_FN = "tests.store.test_concurrent_runs:slow_job"
EXPERIMENT_ID = "_store_conc_tiny"


def slow_job(settings, job):
    # long enough that two runs started together are guaranteed to
    # overlap for the whole of either run's lock window
    time.sleep(0.15)
    return {"benchmark": job.benchmark, "value": len(job.benchmark)}


def tiny_plan(settings):
    return [SimJob(benchmark=name, fn=SLOW_FN)
            for name in settings.benchmarks]


def tiny_reduce(settings, results):
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="store concurrency fixture",
        headers=["benchmark", "value"],
        rows=[[r["benchmark"], r["value"]] for r in results],
    )


TINY = Experiment(EXPERIMENT_ID, plan=tiny_plan, reduce=tiny_reduce)


@pytest.fixture(autouse=True)
def register_tiny(monkeypatch):
    monkeypatch.setitem(REGISTRY, EXPERIMENT_ID, TINY)


def _run_in_child(cache_dir: str, barrier, queue) -> None:
    REGISTRY[EXPERIMENT_ID] = TINY
    barrier.wait(timeout=30)
    result = execute(RunRequest(
        EXPERIMENT_ID, settings=MICRO, jobs=1, cache_dir=cache_dir,
    ))
    queue.put(result.rows)


class TestConcurrentProcesses:
    def test_two_processes_get_disjoint_runs(self, tmp_path):
        """The acceptance scenario: same experiment, same cache dir,
        two live processes — each completes under its own run id and
        each journal parses cleanly end to end."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        children = [
            ctx.Process(target=_run_in_child,
                        args=(str(tmp_path), barrier, queue))
            for _ in range(2)
        ]
        for child in children:
            child.start()
        rows = [queue.get(timeout=60) for _ in children]
        for child in children:
            child.join(timeout=60)
            assert child.exitcode == 0

        assert rows[0] == rows[1]  # same experiment, same answer

        rid = default_run_id(EXPERIMENT_ID, MICRO)
        journals = sorted(p.stem for p in journal_dir(tmp_path).glob("*.jsonl"))
        assert journals == sorted([rid, f"{rid}.2"])
        for run_id in journals:
            state = load_state(tmp_path, run_id)
            assert state is not None
            assert not state.truncated  # no interleaved/torn lines
            assert len(state.done) == len(MICRO.benchmarks)
            assert not state.failed


class TestInProcessConflict:
    def test_engine_suffixes_past_a_held_lock(self, tmp_path):
        rid = default_run_id(EXPERIMENT_ID, MICRO)
        # simulate a live concurrent run holding the deterministic id
        _, other, _ = acquire_run_id(tmp_path, rid)
        bus = ProbeBus()
        try:
            result = execute(RunRequest(
                EXPERIMENT_ID, settings=MICRO, jobs=1,
                cache_dir=tmp_path, probes=bus,
            ))
        finally:
            other.release()
        assert result.rows  # the run completed despite the conflict
        assert bus.counters["store.run_id_conflicts"] == 1
        state = load_state(tmp_path, f"{rid}.2")
        assert state is not None
        assert len(state.done) == len(MICRO.benchmarks)
        # the original id's journal belongs to the other run — ours
        # must not have written it
        assert load_state(tmp_path, rid) is None

    def test_lock_released_after_run(self, tmp_path):
        rid = default_run_id(EXPERIMENT_ID, MICRO)
        execute(RunRequest(
            EXPERIMENT_ID, settings=MICRO, jobs=1, cache_dir=tmp_path,
        ))
        # the finished run's lock is free again: the same id is reusable
        allocated, lock, conflicts = acquire_run_id(tmp_path, rid)
        try:
            assert allocated == rid
            assert conflicts == 0
        finally:
            lock.release()
