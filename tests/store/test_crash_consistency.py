"""Crash-consistency properties: damaged store files never lie.

Hypothesis drives byte-level damage — truncation at a sampled offset,
a bit flip at a sampled position — into each durable artifact (cache
entry, journal, span store) and asserts the reader contract from
DESIGN.md's durable-state section:

* no read ever raises;
* a damaged cache entry is a miss, never a wrong value;
* a damaged journal replays a *prefix* of what was recorded, never a
  record that was not written;
* a damaged span store returns a subset of the appended spans;
* every detected damage bumps a ``store.corrupt.<class>`` counter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import ResultCache
from repro.experiments.journal import RunJournal, journal_path, load_state
from repro.obs import ProbeBus, use_probes
from repro.obs.spans import append_spans, read_spans, span_path
from repro.store.envelope import CORRUPTION_CLASSES

KEY = "ab" + "0" * 62
VALUE = {"result": {"rows": [[1, 2, 3]]}, "metrics": {"counters": {"x": 1}}}


def corruption_total(bus: ProbeBus) -> int:
    return sum(bus.counters.get(f"store.corrupt.{kind}", 0)
               for kind in CORRUPTION_CLASSES)


# one (0, 1] fraction selects the damage position scale-free, so the
# same strategy exercises the magic, the header and the payload
damage_fraction = st.floats(min_value=0.0, max_value=1.0,
                            exclude_max=True)


@settings(max_examples=60, deadline=None)
@given(fraction=damage_fraction)
def test_truncated_cache_entry_is_always_a_miss(tmp_path_factory, fraction):
    root = tmp_path_factory.mktemp("cache")
    cache = ResultCache(root)
    cache.put(KEY, VALUE)
    path = cache.path_for(KEY)
    blob = path.read_bytes()
    path.write_bytes(blob[: int(len(blob) * fraction)])

    bus = ProbeBus()
    with use_probes(bus):
        loaded = cache.get(KEY)
    assert loaded is None
    assert bus.counters.get("store.corrupt.truncated", 0) == 1
    assert corruption_total(bus) == 1


@settings(max_examples=60, deadline=None)
@given(fraction=damage_fraction, mask=st.integers(min_value=1, max_value=255))
def test_flipped_cache_entry_never_returns_wrong_data(
        tmp_path_factory, fraction, mask):
    root = tmp_path_factory.mktemp("cache")
    cache = ResultCache(root)
    cache.put(KEY, VALUE)
    path = cache.path_for(KEY)
    blob = bytearray(path.read_bytes())
    blob[int(len(blob) * fraction)] ^= mask
    path.write_bytes(bytes(blob))

    bus = ProbeBus()
    with use_probes(bus):
        loaded = cache.get(KEY)
    # the flip may land anywhere — magic, header, payload — so the
    # class varies, but the contract does not: miss, one classified
    # counter, never a mangled value
    assert loaded is None
    assert corruption_total(bus) == 1


@settings(max_examples=60, deadline=None)
@given(fraction=damage_fraction)
def test_truncated_journal_replays_a_prefix(tmp_path_factory, fraction):
    root = tmp_path_factory.mktemp("journal")
    keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
    journal = RunJournal.start(root, "run-x", experiment_id="exp",
                               plan_digest="p", settings_digest="s")
    for key in keys:
        journal.record_done(key)
    journal.close()

    path = journal_path(root, "run-x")
    raw = path.read_bytes()
    path.write_bytes(raw[: int(len(raw) * fraction)])

    bus = ProbeBus()
    with use_probes(bus):
        state = load_state(root, "run-x")
    if state is None:
        return  # header itself was damaged: the whole journal is void
    # whatever survives is a prefix of what was recorded — a truncated
    # journal may forget work, it must never invent or corrupt it
    done = sorted(state.done)
    assert done == keys[: len(done)]
    if state.truncated:
        assert corruption_total(bus) >= 1


@settings(max_examples=60, deadline=None)
@given(fraction=damage_fraction, mask=st.integers(min_value=1, max_value=255))
def test_flipped_journal_never_replays_mangled_records(
        tmp_path_factory, fraction, mask):
    root = tmp_path_factory.mktemp("journal")
    keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
    journal = RunJournal.start(root, "run-x", experiment_id="exp",
                               plan_digest="p", settings_digest="s")
    for key in keys:
        journal.record_done(key)
    journal.close()

    path = journal_path(root, "run-x")
    raw = bytearray(path.read_bytes())
    raw[int(len(raw) * fraction)] ^= mask
    path.write_bytes(bytes(raw))

    bus = ProbeBus()
    with use_probes(bus):
        state = load_state(root, "run-x")
    if state is None:
        return
    # the flipped record (and everything after it) is discarded; the
    # surviving done-set contains only keys that were really recorded
    assert state.done <= set(keys)


@settings(max_examples=60, deadline=None)
@given(fraction=damage_fraction, mask=st.integers(min_value=1, max_value=255))
def test_damaged_span_store_returns_a_subset(tmp_path_factory, fraction,
                                             mask):
    root = tmp_path_factory.mktemp("spans")
    spans = [{"span_id": f"s{i}", "name": f"job-{i}"} for i in range(4)]
    append_spans(root, "run-x", spans)
    path = span_path(root, "run-x")
    raw = bytearray(path.read_bytes())
    raw[int(len(raw) * fraction)] ^= mask
    path.write_bytes(bytes(raw))

    bus = ProbeBus()
    with use_probes(bus):
        loaded = read_spans(path)
    ids = {s["span_id"] for s in loaded}
    assert ids <= {s["span_id"] for s in spans}
    if len(loaded) < len(spans):
        assert corruption_total(bus) >= 1
