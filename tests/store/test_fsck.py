"""``repro fsck``: detection, quarantine and repair of store damage."""

import json

from repro.experiments.cache import CACHE_SCHEMA, ResultCache
from repro.experiments.journal import RunJournal, journal_path, load_state
from repro.obs import ProbeBus, use_probes
from repro.obs.spans import append_spans, read_spans, span_path
from repro.store import envelope as env
from repro.store.fsck import fsck, main
from repro.store.locks import acquire_run_id

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


def build_store(root):
    cache = ResultCache(root)
    cache.put(KEY_A, {"result": "alpha", "metrics": {}})
    cache.put(KEY_B, {"result": "beta", "metrics": {}})
    journal = RunJournal.start(root, "run-1", experiment_id="exp",
                               plan_digest="p", settings_digest="s")
    journal.record_done(KEY_A)
    journal.record_done(KEY_B)
    journal.close()
    append_spans(root, "run-1", [{"span_id": "s1", "name": "a"},
                                 {"span_id": "s2", "name": "b"}])
    return cache


class TestCleanStore:
    def test_reports_ok(self, tmp_path):
        build_store(tmp_path)
        report = fsck(tmp_path)
        assert report["ok"]
        assert report["findings"] == []
        assert report["scanned"]["cache_entries"] == 2
        assert report["scanned"]["journals"] == 1
        assert report["scanned"]["span_files"] == 1

    def test_empty_root_is_ok(self, tmp_path):
        assert fsck(tmp_path)["ok"]


class TestCacheEntries:
    def test_truncated_entry_detected_and_quarantined(self, tmp_path):
        cache = build_store(tmp_path)
        path = cache.path_for(KEY_A)
        path.write_bytes(path.read_bytes()[:-10])
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["truncated"] == 1
        assert report["repaired"] == 1
        assert not path.exists()
        quarantined = list((tmp_path / "lost+found").rglob("*.pkl"))
        assert len(quarantined) == 1
        assert quarantined[0].name == path.name

    def test_bit_flip_detected(self, tmp_path):
        cache = build_store(tmp_path)
        path = cache.path_for(KEY_A)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = fsck(tmp_path)
        assert report["corrupt"]["bit_flipped"] == 1
        assert not report["ok"]  # detected but not repaired
        assert path.exists()  # without --repair nothing moves

    def test_foreign_file_is_wrong_schema(self, tmp_path):
        cache = build_store(tmp_path)
        alien = cache.path_for("cc" + "0" * 62)
        alien.parent.mkdir(parents=True, exist_ok=True)
        alien.write_bytes(b"no envelope at all")
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["wrong_schema"] == 1
        assert not alien.exists()

    def test_quarantine_dedups_name_collisions(self, tmp_path):
        cache = build_store(tmp_path)
        path = cache.path_for(KEY_A)
        for _ in range(2):
            path.write_bytes(b"garbage")
            assert fsck(tmp_path, repair=True)["repaired"] == 1
        rel = path.relative_to(tmp_path)
        base = tmp_path / "lost+found" / rel
        assert base.exists()
        assert base.with_name(base.name + ".1").exists()


class TestOrphanTmp:
    def test_stale_tmp_quarantined_young_tmp_kept(self, tmp_path):
        build_store(tmp_path)
        sub = tmp_path / f"v{CACHE_SCHEMA}" / "dd"
        sub.mkdir(parents=True, exist_ok=True)
        stale = sub / ("dd" + "0" * 62 + ".tmp.999")
        stale.write_bytes(b"half-written")
        report = fsck(tmp_path, repair=True, min_tmp_age_s=0.0)
        assert report["corrupt"]["orphan_tmp"] == 1
        assert not stale.exists()

        young = sub / ("ee" + "0" * 62 + ".tmp.999")
        young.write_bytes(b"live writer")
        report = fsck(tmp_path, repair=True, min_tmp_age_s=3600.0)
        assert report["corrupt"]["orphan_tmp"] == 0
        assert young.exists()


class TestJournals:
    def test_torn_tail_is_rewritten_to_verified_prefix(self, tmp_path):
        build_store(tmp_path)
        path = journal_path(tmp_path, "run-1")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1] + [lines[-1][:12]]) + "\n")
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["truncated"] == 1
        assert report["repaired"] == 1
        # the rewritten journal loads cleanly with the surviving record
        state = load_state(tmp_path, "run-1")
        assert state is not None
        assert not state.truncated
        assert state.done == {KEY_A}

    def test_journal_without_header_is_quarantined(self, tmp_path):
        build_store(tmp_path)
        path = journal_path(tmp_path, "run-1")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # drop the header
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["wrong_schema"] >= 1
        assert not path.exists()
        assert list((tmp_path / "lost+found" / "journal").glob("*.jsonl"))

    def test_interior_flip_is_dropped_on_rewrite(self, tmp_path):
        build_store(tmp_path)
        path = journal_path(tmp_path, "run-1")
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace(KEY_A, "aa" + "1" * 62)
        path.write_text("\n".join(lines) + "\n")
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["bit_flipped"] == 1
        state = load_state(tmp_path, "run-1")
        assert state.done == {KEY_B}


class TestSpans:
    def test_damaged_span_lines_rewritten(self, tmp_path):
        build_store(tmp_path)
        path = span_path(tmp_path, "run-1")
        with path.open("a") as fh:
            fh.write('{"span_id": "s3", "broken json\n')
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["truncated"] == 1
        spans = read_spans(path)
        assert [s["span_id"] for s in spans] == ["s1", "s2"]


class TestServeSnapshot:
    def snapshot(self, tmp_path, requests):
        doc = {"requests": requests,
               "sha256": env.snapshot_digest(requests)}
        path = tmp_path / "journal" / "serve-inflight.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc))
        return path

    def test_intact_snapshot_passes(self, tmp_path):
        self.snapshot(tmp_path, [{"experiment_id": "fig17"}])
        assert fsck(tmp_path)["ok"]

    def test_flipped_snapshot_detected(self, tmp_path):
        path = self.snapshot(tmp_path, [{"experiment_id": "fig17"}])
        path.write_text(path.read_text().replace("fig17", "fig18"))
        report = fsck(tmp_path, repair=True)
        assert report["corrupt"]["bit_flipped"] == 1
        assert not path.exists()

    def test_torn_snapshot_detected(self, tmp_path):
        path = self.snapshot(tmp_path, [{"experiment_id": "fig17"}])
        path.write_text(path.read_text()[:20])
        report = fsck(tmp_path)
        assert report["corrupt"]["truncated"] == 1


class TestLocksAndCounters:
    def test_lock_inventory_reported(self, tmp_path):
        build_store(tmp_path)
        _, lock, _ = acquire_run_id(tmp_path, "run-1")
        try:
            report = fsck(tmp_path)
            assert report["locks"]["held"] == ["run-1"]
        finally:
            lock.release()

    def test_findings_bump_ambient_counters(self, tmp_path):
        cache = build_store(tmp_path)
        cache.path_for(KEY_A).write_bytes(b"junk")
        bus = ProbeBus()
        with use_probes(bus):
            fsck(tmp_path)
        assert bus.counters["store.corrupt.wrong_schema"] == 1


class TestCli:
    def test_exit_one_on_damage_zero_after_repair(self, tmp_path, capsys):
        cache = build_store(tmp_path)
        cache.path_for(KEY_A).write_bytes(b"junk")
        assert main(["--cache-dir", str(tmp_path)]) == 1
        assert main(["--cache-dir", str(tmp_path), "--repair"]) == 0
        assert main(["--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "store is clean" in out

    def test_json_report(self, tmp_path, capsys):
        build_store(tmp_path)
        assert main(["--cache-dir", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"]
        assert report["scanned"]["cache_entries"] == 2
