"""Unit tests for the integrity envelope and sealed JSONL records."""

import json

import pytest

from repro.obs import ProbeBus, use_probes
from repro.obs.probes import ListTraceSink
from repro.store import envelope as env


class TestWrapUnwrap:
    def test_round_trip(self):
        payload = b"\x00\x01binary payload\xff" * 100
        blob = env.wrap(payload, schema=2)
        assert env.unwrap(blob, schema=2) == payload

    def test_empty_payload_round_trips(self):
        blob = env.wrap(b"", schema=1)
        assert env.unwrap(blob, schema=1) == b""

    def test_header_is_ascii_json(self):
        blob = env.wrap(b"x", schema=7)
        magic_end = len(env.MAGIC)
        header = json.loads(blob[magic_end:blob.index(b"\n")])
        assert header["schema"] == 7
        assert header["len"] == 1
        assert header["v"] == env.ENVELOPE_VERSION

    def test_empty_file_is_truncated(self):
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(b"", schema=2)
        assert exc.value.kind == env.TRUNCATED

    def test_cut_inside_magic_is_truncated(self):
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(env.MAGIC[:4], schema=2)
        assert exc.value.kind == env.TRUNCATED

    def test_cut_inside_header_is_truncated(self):
        blob = env.wrap(b"payload", schema=2)
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(blob[: len(env.MAGIC) + 10], schema=2)
        assert exc.value.kind == env.TRUNCATED

    def test_cut_inside_payload_is_truncated(self):
        blob = env.wrap(b"payload bytes here", schema=2)
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(blob[:-5], schema=2)
        assert exc.value.kind == env.TRUNCATED

    def test_flipped_payload_byte_is_bit_flipped(self):
        blob = bytearray(env.wrap(b"payload bytes here", schema=2))
        blob[-1] ^= 0xFF
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(bytes(blob), schema=2)
        assert exc.value.kind == env.BIT_FLIPPED

    def test_trailing_garbage_is_bit_flipped(self):
        blob = env.wrap(b"payload", schema=2) + b"extra"
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(blob, schema=2)
        assert exc.value.kind == env.BIT_FLIPPED

    def test_no_magic_is_wrong_schema(self):
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(b"\x80\x05a plain pickle, no envelope", schema=2)
        assert exc.value.kind == env.WRONG_SCHEMA

    def test_schema_mismatch_is_wrong_schema(self):
        blob = env.wrap(b"payload", schema=2)
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(blob, schema=3)
        assert exc.value.kind == env.WRONG_SCHEMA

    def test_future_envelope_version_is_wrong_schema(self):
        header = json.dumps({"len": 1, "schema": 2, "sha256": "0" * 64,
                             "v": env.ENVELOPE_VERSION + 1})
        blob = env.MAGIC + header.encode() + b"\nx"
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(blob, schema=2)
        assert exc.value.kind == env.WRONG_SCHEMA

    def test_unparseable_header_is_bit_flipped(self):
        blob = env.MAGIC + b'{"len": not json}\npayload'
        with pytest.raises(env.EnvelopeError) as exc:
            env.unwrap(blob, schema=2)
        assert exc.value.kind == env.BIT_FLIPPED

    def test_unknown_corruption_class_rejected(self):
        with pytest.raises(ValueError):
            env.EnvelopeError("melted")


class TestCheckHeader:
    def test_intact_file_passes(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(env.wrap(b"payload", schema=2))
        assert env.check_header(path, schema=2) is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            env.check_header(tmp_path / "absent.pkl", schema=2)

    def test_truncated_payload_detected_by_size(self, tmp_path):
        path = tmp_path / "entry.pkl"
        blob = env.wrap(b"p" * 1000, schema=2)
        path.write_bytes(blob[:-100])
        assert env.check_header(path, schema=2) == env.TRUNCATED

    def test_trailing_bytes_detected_by_size(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(env.wrap(b"payload", schema=2) + b"x")
        assert env.check_header(path, schema=2) == env.BIT_FLIPPED

    def test_foreign_file_is_wrong_schema(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"not an envelope")
        assert env.check_header(path, schema=2) == env.WRONG_SCHEMA

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(env.wrap(b"payload", schema=1))
        assert env.check_header(path, schema=2) == env.WRONG_SCHEMA

    def test_interior_payload_flip_passes(self, tmp_path):
        # documented blind spot: same length, flipped interior byte —
        # only unwrap's full hash catches it
        path = tmp_path / "entry.pkl"
        blob = bytearray(env.wrap(b"p" * 100, schema=2))
        blob[-50] ^= 0x01
        path.write_bytes(bytes(blob))
        assert env.check_header(path, schema=2) is None


class TestSealedRecords:
    def test_round_trip_strips_sha(self):
        record = {"kind": "job", "key": "abc", "status": "done"}
        line = env.seal_record(record)
        assert env.LINE_SHA_KEY in json.loads(line)
        loaded, damage = env.open_record(line)
        assert damage is None
        assert loaded == record

    def test_reseal_is_stable(self):
        record = {"kind": "job", "key": "abc"}
        once = env.seal_record(record)
        again = env.seal_record(json.loads(once))
        assert once == again

    def test_unsealed_legacy_line_loads(self):
        loaded, damage = env.open_record('{"kind": "job", "key": "k"}')
        assert damage is None
        assert loaded == {"kind": "job", "key": "k"}

    def test_flipped_sealed_line_is_bit_flipped(self):
        line = env.seal_record({"kind": "job", "key": "abc"})
        tampered = line.replace('"abc"', '"abd"')
        loaded, damage = env.open_record(tampered)
        assert loaded is None
        assert damage == env.BIT_FLIPPED

    def test_torn_line_is_truncated(self):
        line = env.seal_record({"kind": "job", "key": "abc"})
        loaded, damage = env.open_record(line[: len(line) // 2])
        assert loaded is None
        assert damage == env.TRUNCATED

    def test_non_object_line_is_wrong_schema(self):
        loaded, damage = env.open_record("[1, 2, 3]")
        assert loaded is None
        assert damage == env.WRONG_SCHEMA


class TestSnapshotDigest:
    def test_deterministic(self):
        requests = [{"experiment_id": "fig17", "ticket": "t1"}]
        assert env.snapshot_digest(requests) == env.snapshot_digest(requests)

    def test_sensitive_to_content(self):
        a = env.snapshot_digest([{"ticket": "t1"}])
        b = env.snapshot_digest([{"ticket": "t2"}])
        assert a != b


class TestCountCorruption:
    def test_bumps_classified_counter(self):
        bus = ProbeBus()
        with use_probes(bus):
            env.count_corruption(env.TRUNCATED, store="cache", path="p")
        assert bus.counters["store.corrupt.truncated"] == 1
        assert bus.events_emitted == 0  # no trace sink installed

    def test_traces_when_tracing(self):
        sink = ListTraceSink()
        bus = ProbeBus(trace=sink)
        with use_probes(bus):
            env.count_corruption(env.BIT_FLIPPED, store="spans",
                                 path="spans/r.jsonl", line=4)
        events = [r for r in sink.records
                  if r["event"] == "store.corrupt_entry"]
        assert len(events) == 1
        assert events[0]["kind"] == "bit_flipped"
        assert events[0]["line"] == 4
