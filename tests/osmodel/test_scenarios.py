"""Tests for the allocation scenarios."""

import numpy as np
import pytest

from repro.osmodel.scenarios import (
    PAPER_SCENARIOS,
    AllocationScenario,
    scenario_by_name,
)


class TestAllocationScenario:
    def test_paper_scenarios_match_table1(self):
        assert PAPER_SCENARIOS["100%"].allocated_fraction == 1.0
        assert PAPER_SCENARIOS["88%"].allocated_fraction == 0.88
        assert PAPER_SCENARIOS["70%"].allocated_fraction == 0.70
        assert PAPER_SCENARIOS["28%"].allocated_fraction == 0.28

    def test_idle_fraction(self):
        assert PAPER_SCENARIOS["70%"].idle_fraction == pytest.approx(0.30)

    def test_allocated_page_count(self):
        assert PAPER_SCENARIOS["28%"].allocated_page_count(1000) == 280

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AllocationScenario("bad", 1.2)

    def test_from_utilization_trace(self):
        samples = np.array([0.5, 0.7, 0.9])
        scenario = AllocationScenario.from_utilization_trace("t", samples)
        assert scenario.allocated_fraction == pytest.approx(0.7)

    def test_from_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            AllocationScenario.from_utilization_trace("t", np.array([]))

    def test_lookup(self):
        assert scenario_by_name("88%").source.startswith("Alibaba")
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_by_name("55%")
