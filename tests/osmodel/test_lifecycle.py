"""Tests for the process-lifecycle (allocation churn) model."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.osmodel.lifecycle import ProcessLifecycle
from repro.osmodel.pages import CleansePolicy
from repro.workloads.benchmarks import benchmark_profile


def make_system(policy=CleansePolicy.ZERO_ON_FREE, seed=0):
    config = SystemConfig.scaled(total_bytes=4 << 20, rows_per_ar=32,
                                 seed=seed, cleanse_policy=policy)
    return ZeroRefreshSystem(config)


def make_lifecycle(system, target=0.6, seed=1):
    return ProcessLifecycle(
        system, benchmark_profile("gcc"), target_utilization=target,
        mean_size_pages=64, mean_lifetime_windows=3,
        rng=np.random.default_rng(seed),
    )


class TestProcessLifecycle:
    def test_rejects_bad_target(self):
        system = make_system()
        with pytest.raises(ValueError):
            ProcessLifecycle(system, benchmark_profile("gcc"),
                             target_utilization=0.0)

    def test_reaches_target_utilization(self):
        system = make_system()
        lifecycle = make_lifecycle(system, target=0.6)
        lifecycle.step()
        assert lifecycle.utilization == pytest.approx(0.6, abs=0.1)

    def test_processes_expire(self):
        system = make_system()
        lifecycle = make_lifecycle(system)
        for _ in range(12):
            lifecycle.step()
        assert lifecycle.departures > 0
        # churn keeps replacing them
        assert lifecycle.arrivals > lifecycle.departures

    def test_run_interleaves_refresh(self):
        system = make_system()
        lifecycle = make_lifecycle(system)
        results = lifecycle.run(4)
        assert len(results) == 4
        assert all(r.groups_total > 0 for r in results)
        assert system.verify_integrity()

    def test_zero_on_free_beats_zero_on_alloc_under_churn(self):
        """The paper's OS change pays off exactly here: after churn,
        zero-on-free leaves departed tenants' pages skippable, while
        zero-on-alloc leaves stale (charged) content behind.

        Measured in the quiet windows after churn: the free-time zero
        fill itself dirties AR sets in the window it happens, so the
        benefit is a steady-state property of the idle pages, not of the
        churn transient."""
        reductions = {}
        for policy in (CleansePolicy.ZERO_ON_FREE, CleansePolicy.ZERO_ON_ALLOC):
            system = make_system(policy, seed=2)
            lifecycle = make_lifecycle(system, target=0.6, seed=3)
            lifecycle.run(8)  # churn phase: tenants arrive and depart
            assert lifecycle.departures > 0
            system.engine.run_window(system.time_s)  # re-derivation pass
            system.time_s += system.config.timing.tret_s
            quiet = system.engine.run_window(system.time_s)
            reductions[policy] = quiet.reduction()
        assert (reductions[CleansePolicy.ZERO_ON_FREE]
                > reductions[CleansePolicy.ZERO_ON_ALLOC] + 0.05)

    def test_freed_page_reads_zero_under_zero_on_free(self):
        system = make_system()
        lifecycle = make_lifecycle(system)
        lifecycle.step()
        process = lifecycle.processes[0]
        page = int(process.pages[0])
        process.windows_left = 1
        lifecycle.step()  # reaps it
        assert not system.allocator.is_allocated(page)
        assert not system.read_page(page).any()
