"""Tests for the page allocator and cleansing policies."""

import numpy as np
import pytest

from repro.controller.memctrl import MemoryController
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.osmodel.pages import CleansePolicy, PageAllocator
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


@pytest.fixture
def controller():
    geom = DramGeometry(rows_per_bank=128, rows_per_ar=32, cell_interleave=32)
    layout = CellTypeLayout(interleave=32)
    device = DramDevice(geom, layout)
    predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
    return MemoryController(device, ValueTransformCodec(predictor))


class TestAllocation:
    def test_starts_all_free(self, controller):
        allocator = PageAllocator(controller)
        assert allocator.allocated_fraction == 0.0
        assert len(allocator.free_pages) == allocator.total_pages

    def test_allocate_marks_pages(self, controller):
        allocator = PageAllocator(controller)
        pages = allocator.allocate(10)
        assert len(pages) == 10
        assert allocator.allocated_fraction == pytest.approx(
            10 / allocator.total_pages
        )
        assert all(allocator.is_allocated(int(p)) for p in pages)

    def test_exhaustion_raises(self, controller):
        allocator = PageAllocator(controller)
        allocator.allocate(allocator.total_pages)
        with pytest.raises(MemoryError):
            allocator.allocate(1)

    def test_free_returns_pages(self, controller):
        allocator = PageAllocator(controller)
        pages = allocator.allocate(5)
        allocator.free(pages)
        assert allocator.allocated_fraction == 0.0

    def test_double_free_rejected(self, controller):
        allocator = PageAllocator(controller)
        pages = allocator.allocate(2)
        allocator.free(pages)
        with pytest.raises(ValueError, match="double free"):
            allocator.free(pages)

    def test_seed_allocated_fraction(self, controller):
        allocator = PageAllocator(controller, rng=np.random.default_rng(0))
        allocator.seed_allocated_fraction(0.25)
        assert allocator.allocated_fraction == pytest.approx(0.25, abs=0.01)

    def test_seed_rejects_bad_fraction(self, controller):
        allocator = PageAllocator(controller)
        with pytest.raises(ValueError):
            allocator.seed_allocated_fraction(1.5)


class TestCleansePolicies:
    def _dirty_page(self, controller, page):
        rng = np.random.default_rng(3)
        lines = rng.integers(1, 2**64, size=(64, 8), dtype=np.uint64)
        controller.write_page(page, lines)

    def test_zero_on_free_cleanses_at_free_time(self, controller):
        allocator = PageAllocator(controller, CleansePolicy.ZERO_ON_FREE)
        pages = allocator.allocate(1)
        self._dirty_page(controller, int(pages[0]))
        allocator.free(pages)
        assert not controller.read_page(int(pages[0])).any()
        assert allocator.zero_fills == 1

    def test_zero_on_alloc_leaves_freed_pages_dirty(self, controller):
        allocator = PageAllocator(controller, CleansePolicy.ZERO_ON_ALLOC)
        pages = allocator.allocate(1)
        page = int(pages[0])
        self._dirty_page(controller, page)
        allocator.free(pages)
        assert controller.read_page(page).any()  # stale content stays
        # ... until the page is reused
        reused = allocator.allocate(allocator.total_pages)
        assert not controller.read_page(page).any()

    def test_none_policy_never_zeroes(self, controller):
        allocator = PageAllocator(controller, CleansePolicy.NONE)
        pages = allocator.allocate(1)
        self._dirty_page(controller, int(pages[0]))
        allocator.free(pages)
        allocator.allocate(allocator.total_pages)
        assert allocator.zero_fills == 0

    def test_zero_on_free_makes_rows_skippable(self, controller):
        """The OS-transparent benefit: freed pages become discharged rows."""
        allocator = PageAllocator(controller, CleansePolicy.ZERO_ON_FREE)
        pages = allocator.allocate(8)
        for page in pages:
            self._dirty_page(controller, int(page))
        allocator.free(pages)
        banks, rows = controller.mapper.page_rows(pages)
        for bank, row in zip(np.ravel(banks), np.ravel(rows)):
            discharged = controller.device.banks[int(bank)].detect_discharged(
                np.array([int(row)])
            )
            assert discharged[0]
