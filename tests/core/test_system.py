"""Tests for the ZeroRefreshSystem orchestrator."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.workloads.benchmarks import benchmark_profile


def make_system(seed=0, **overrides):
    config = SystemConfig.scaled(total_bytes=8 << 20, rows_per_ar=32,
                                 seed=seed, **overrides)
    return ZeroRefreshSystem(config)


class TestPopulate:
    def test_allocated_fraction_respected(self):
        system = make_system()
        system.populate(benchmark_profile("gcc"), allocated_fraction=0.5)
        assert system.allocator.allocated_fraction == pytest.approx(0.5,
                                                                    abs=0.07)

    def test_zero_fill_matches_codec_path(self):
        """The fast idle-page zero fill must equal encoding zero lines."""
        system = make_system()
        system.populate(benchmark_profile("gcc"), allocated_fraction=0.5)
        free_pages = system.allocator.free_pages[:8]
        zero = np.zeros((system.config.geometry.lines_per_page, 8),
                        dtype=np.uint64)
        for page in free_pages:
            banks, rows = system.controller.mapper.page_rows(int(page))
            bank, row = int(np.ravel(banks)[0]), int(np.ravel(rows)[0])
            expected = system.codec.encode_row(zero, row)
            np.testing.assert_array_equal(
                system.device.banks[bank].data[row], expected
            )

    def test_page_content_reads_back(self):
        system = make_system()
        system.populate(benchmark_profile("mcf"), allocated_fraction=1.0)
        page = int(system.allocator.allocated_pages[5])
        data = system.read_page(page)
        assert data.shape == (64, 8)

    def test_free_pages_read_back_zero(self):
        system = make_system()
        system.populate(benchmark_profile("mcf"), allocated_fraction=0.3)
        page = int(system.allocator.free_pages[0])
        assert not system.read_page(page).any()


class TestRunWindows:
    def test_conventional_mode_never_skips(self):
        system = make_system(refresh_mode="conventional")
        system.populate(benchmark_profile("gemsFDTD"))
        result = system.run_windows(2)
        assert result.normalized_refresh == 1.0

    def test_zero_refresh_beats_conventional(self):
        system = make_system()
        system.populate(benchmark_profile("gemsFDTD"))
        result = system.run_windows(2)
        assert result.normalized_refresh < 0.8

    def test_idle_memory_increases_reduction(self):
        reductions = {}
        for fraction in (1.0, 0.28):
            system = make_system(seed=3)
            system.populate(benchmark_profile("mcf"),
                            allocated_fraction=fraction)
            reductions[fraction] = system.run_windows(2).refresh_reduction
        assert reductions[0.28] > reductions[1.0] + 0.2

    def test_integrity_after_run(self):
        system = make_system(seed=1)
        system.populate(benchmark_profile("bzip2"))
        system.run_windows(3)
        assert system.verify_integrity()

    def test_written_data_survives_refresh_skipping(self):
        """End-to-end data integrity: everything written reads back."""
        system = make_system(seed=2)
        profile = benchmark_profile("sphinx3")
        system.populate(profile, allocated_fraction=0.6)
        rng = np.random.default_rng(0)
        page = int(system.allocator.allocated_pages[3])
        lines = rng.integers(0, 2**64, size=(64, 8), dtype=np.uint64)
        system.controller.write_page(page, lines, system.time_s)
        system.run_windows(3)
        np.testing.assert_array_equal(system.read_page(page), lines)

    def test_result_fields(self):
        system = make_system()
        system.populate(benchmark_profile("lbm"))
        result = system.run_windows(2)
        assert result.benchmark == "lbm"
        assert result.ipc is not None
        assert 0 < result.normalized_energy
        assert "lbm" in result.summary()

    def test_energy_trails_refresh_reduction(self):
        system = make_system(seed=4)
        system.populate(benchmark_profile("gemsFDTD"))
        result = system.run_windows(3)
        assert result.normalized_energy >= result.normalized_refresh
        assert result.normalized_energy - result.normalized_refresh < 0.08

    def test_ipc_improves_with_skipping(self):
        system = make_system(seed=5)
        system.populate(benchmark_profile("gemsFDTD"))
        result = system.run_windows(2)
        assert result.ipc.normalized_ipc > 1.0


class TestModes:
    def test_naive_mode_runs(self):
        system = make_system(refresh_mode="naive")
        system.populate(benchmark_profile("gcc"))
        result = system.run_windows(2)
        assert result.normalized_refresh < 1.0
        assert system.engine.naive_tracker is not None

    def test_celltype_errors_reduce_benefit_not_correctness(self):
        exact = make_system(seed=6)
        noisy = make_system(seed=6, celltype_error_rate=0.3)
        for system in (exact, noisy):
            system.populate(benchmark_profile("sphinx3"))
        r_exact = exact.run_windows(2)
        r_noisy = noisy.run_windows(2)
        assert r_noisy.normalized_refresh > r_exact.normalized_refresh
        page = int(noisy.allocator.allocated_pages[0])
        assert noisy.read_page(page).shape == (64, 8)
        assert noisy.verify_integrity()
