"""Tests for the run-level result containers."""

import pytest

from repro.core.metrics import RefreshStats, RunResult
from repro.cpu.core import IpcResult
from repro.energy.accounting import EnergyReport


def make_result(refreshed=60, skipped=40, ipc=None):
    stats = RefreshStats(groups_refreshed=refreshed, groups_skipped=skipped,
                         windows=1)
    energy = EnergyReport(
        refresh_nj=refreshed * 1.0,
        ebdi_nj=1.0,
        sram_leakage_nj=0.5,
        status_access_nj=0.5,
        baseline_refresh_nj=(refreshed + skipped) * 1.0,
        duration_s=0.032,
    )
    return RunResult(refresh=stats, energy=energy, ipc=ipc,
                     allocated_fraction=0.7, benchmark="mcf")


class TestRunResult:
    def test_normalized_refresh(self):
        result = make_result()
        assert result.normalized_refresh == pytest.approx(0.6)
        assert result.refresh_reduction == pytest.approx(0.4)

    def test_normalized_energy_includes_overheads(self):
        result = make_result()
        assert result.normalized_energy == pytest.approx(62.0 / 100.0)

    def test_ipc_optional(self):
        assert make_result().normalized_ipc is None
        ipc = IpcResult(benchmark="mcf", baseline_ipc=1.0, ipc=1.05,
                        baseline_unavailability=0.01, unavailability=0.005)
        result = make_result(ipc=ipc)
        assert result.normalized_ipc == pytest.approx(1.05)

    def test_summary_contains_key_fields(self):
        summary = make_result().summary()
        assert "mcf" in summary
        assert "70%" in summary
        assert "refresh=0.600" in summary


class TestEnergyReport:
    def test_reduction(self):
        result = make_result()
        assert result.energy.reduction() == pytest.approx(1 - 0.62)

    def test_zero_baseline_normalizes_to_one(self):
        report = EnergyReport(0, 0, 0, 0, baseline_refresh_nj=0,
                              duration_s=0.0)
        assert report.normalized() == 1.0
