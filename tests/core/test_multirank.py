"""Tests for the multi-rank DIMM aggregation."""

import pytest

from repro.core.config import SystemConfig
from repro.core.multirank import MultiRankSystem
from repro.workloads.benchmarks import benchmark_profile


def make_dimm(num_ranks=2, seed=0):
    config = SystemConfig.scaled(total_bytes=4 << 20, rows_per_ar=32,
                                 seed=seed)
    return MultiRankSystem(config, num_ranks=num_ranks)


class TestMultiRankSystem:
    def test_rejects_zero_ranks(self):
        config = SystemConfig.scaled(total_bytes=4 << 20, rows_per_ar=32)
        with pytest.raises(ValueError):
            MultiRankSystem(config, num_ranks=0)

    def test_total_capacity(self):
        dimm = make_dimm(4)
        assert dimm.total_bytes == 4 * (4 << 20)

    def test_aggregated_refresh_is_sum(self):
        dimm = make_dimm(2, seed=1)
        profile = benchmark_profile("gcc")
        dimm.populate(profile, accesses_per_window=0)
        result = dimm.run_windows(2)
        per_rank_total = dimm.config.geometry.total_rows * 2  # 2 windows
        assert result.refresh.groups_total == 2 * per_rank_total
        assert result.refresh.windows == 2

    def test_normalized_metrics_match_single_rank_scale(self):
        """Aggregated ratios sit between (and near) per-rank ratios."""
        dimm = make_dimm(2, seed=2)
        profile = benchmark_profile("milc")
        dimm.populate(profile, accesses_per_window=0)
        result = dimm.run_windows(2)
        singles = [r.normalized_refresh for r in dimm.last_rank_results]
        assert min(singles) - 1e-9 <= result.normalized_refresh <= max(singles) + 1e-9

    def test_ipc_uses_mean_unavailability(self):
        dimm = make_dimm(2, seed=3)
        dimm.populate(benchmark_profile("lbm"), accesses_per_window=0)
        result = dimm.run_windows(2)
        mean_u = sum(r.engine.stats.normalized_refresh() for r in dimm.ranks)
        assert result.ipc is not None
        assert result.ipc.normalized_ipc >= 1.0

    def test_integrity_across_ranks(self):
        dimm = make_dimm(2, seed=4)
        dimm.populate(benchmark_profile("bzip2"))
        dimm.run_windows(2)
        assert dimm.verify_integrity()

    def test_ranks_are_independent_domains(self):
        """Writing in one rank never dirties another rank's sets."""
        dimm = make_dimm(2, seed=5)
        dimm.populate(benchmark_profile("gcc"), accesses_per_window=0)
        dimm.run_windows(1)
        rank0, rank1 = dimm.ranks
        page = int(rank0.allocator.allocated_pages[0])
        rank0.controller.zero_page(page, rank0.time_s)
        before = (rank0.engine.stats.dirty_ars, rank1.engine.stats.dirty_ars)
        dimm.run_windows(1, warmup_windows=0)
        assert rank0.engine.stats.dirty_ars > before[0]
        assert rank1.engine.stats.dirty_ars == before[1]
