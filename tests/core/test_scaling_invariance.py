"""Capacity-scaling invariance: the justification for simulating small.

Every metric the paper reports is a ratio against the conventional
baseline.  These tests demonstrate that the ratios are stable across
simulated capacities when the structural ratios (chips, banks, row
size, rows per AR) and the content statistics are held fixed — the
property DESIGN.md relies on to stand in 32 MB for 32 GB.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.workloads.benchmarks import benchmark_profile


def content_only_run(total_bytes, seed=9, windows=2, **overrides):
    """Run without write traffic, isolating the content-driven ratio."""
    config = SystemConfig.scaled(total_bytes=total_bytes, rows_per_ar=32,
                                 seed=seed, **overrides)
    system = ZeroRefreshSystem(config)
    system.populate(benchmark_profile("milc"), allocated_fraction=1.0,
                    accesses_per_window=0)
    return system.run_windows(windows).normalized_refresh


class TestScalingInvariance:
    def test_normalized_refresh_stable_across_capacity(self):
        small = content_only_run(8 << 20)
        large = content_only_run(32 << 20)
        assert small == pytest.approx(large, abs=0.05)

    def test_partial_allocation_stable_across_capacity(self):
        results = []
        for total in (8 << 20, 32 << 20):
            config = SystemConfig.scaled(total_bytes=total, rows_per_ar=32,
                                         seed=11)
            system = ZeroRefreshSystem(config)
            system.populate(benchmark_profile("gcc"), allocated_fraction=0.5,
                            accesses_per_window=0)
            results.append(system.run_windows(2).normalized_refresh)
        assert results[0] == pytest.approx(results[1], abs=0.06)

    def test_windows_do_not_change_steady_state(self):
        short = content_only_run(8 << 20, windows=1)
        long = content_only_run(8 << 20, windows=4)
        assert short == pytest.approx(long, abs=0.01)
