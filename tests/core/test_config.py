"""Tests for SystemConfig (Table II) and its factories."""

from repro.core.config import SystemConfig
from repro.dram.timing import TemperatureMode
from repro.transform.codec import StageSelection


class TestFactories:
    def test_default_matches_table2_ratios(self):
        config = SystemConfig()
        assert config.geometry.num_chips == 8
        assert config.geometry.num_banks == 8
        assert config.geometry.row_bytes == 4096
        assert config.geometry.line_bytes == 64
        assert config.geometry.word_bytes == 8
        assert config.timing.trfc_ns == 28.0
        assert config.timing.currents.idd5 == 120.0

    def test_paper_capacity(self):
        config = SystemConfig.paper()
        assert config.geometry.total_bytes == 32 << 30

    def test_scaled_preserves_ratios(self):
        config = SystemConfig.scaled(total_bytes=16 << 20)
        assert config.geometry.total_bytes == 16 << 20
        assert config.geometry.rows_per_ar == 128
        assert config.geometry.num_chips == 8

    def test_scaled_accepts_geometry_overrides(self):
        config = SystemConfig.scaled(total_bytes=16 << 20, row_bytes=2048,
                                     word_bytes=4, rows_per_ar=32)
        assert config.geometry.row_bytes == 2048
        assert config.geometry.word_bytes == 4
        assert config.geometry.rows_per_ar == 32

    def test_default_temperature_is_extended(self):
        config = SystemConfig.scaled()
        assert config.timing.temperature is TemperatureMode.EXTENDED
        assert config.timing.tret_s == 0.032


class TestDerivedConfigs:
    def test_conventional_flips_mode_only(self):
        config = SystemConfig.scaled()
        conv = config.conventional()
        assert conv.refresh_mode == "conventional"
        assert conv.geometry == config.geometry

    def test_with_temperature(self):
        config = SystemConfig.scaled().with_temperature(TemperatureMode.NORMAL)
        assert config.timing.tret_s == 0.064

    def test_with_stages(self):
        config = SystemConfig.scaled().with_stages(StageSelection.none())
        assert not config.stages.ebdi

    def test_table2_summary(self):
        table = SystemConfig.paper().table2()
        assert "32 GB" in table["memory"]
        assert "tRFC=28" in table["timing (ns)"]
        assert "IDD5=120" in table["currents (mA)"]
        assert "32 ms" in table["retention"]
