"""Top-level package surface tests."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_system_config(self):
        config = repro.SystemConfig.scaled(total_bytes=4 << 20,
                                           rows_per_ar=32)
        assert config.geometry.total_bytes == 4 << 20

    def test_lazy_zero_refresh_system(self):
        assert repro.ZeroRefreshSystem.__name__ == "ZeroRefreshSystem"

    def test_lazy_refresh_stats(self):
        stats = repro.RefreshStats(groups_refreshed=1, groups_skipped=1)
        assert stats.normalized_refresh() == 0.5

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_all_subpackages_import(self):
        import repro.analysis
        import repro.baselines
        import repro.cache
        import repro.controller
        import repro.core
        import repro.cpu
        import repro.dram
        import repro.energy
        import repro.experiments
        import repro.osmodel
        import repro.transform
        import repro.workloads
