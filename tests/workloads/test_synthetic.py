"""Tests for the synthetic content classes."""

import numpy as np
import pytest

from repro.transform.bitplane import BitPlaneTransform
from repro.transform.celltype import CellType
from repro.transform.ebdi import EbdiCodec
from repro.workloads.synthetic import (
    LINE_CLASSES,
    SKIPPABLE_GROUPS,
    generate_lines,
    zero_block_fraction,
    zero_byte_fraction,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(LINE_CLASSES))
    def test_shape_and_dtype(self, name, rng):
        lines = generate_lines(name, 100, rng)
        assert lines.shape == (100, 8)
        assert lines.dtype == np.uint64

    def test_unknown_class_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown content class"):
            generate_lines("nope", 1, rng)

    def test_zero_class_is_zero(self, rng):
        assert not generate_lines("zero", 10, rng).any()

    def test_uniform32_constant_within_line(self, rng):
        lines = generate_lines("uniform32", 50, rng)
        assert (lines == lines[:, :1]).all()
        assert (lines < 2**32).all()

    def test_text_bytes_are_printable_ascii(self, rng):
        lines = generate_lines("text", 20, rng)
        raw = lines.view(np.uint8)
        assert (raw >= 0x20).all() and (raw < 0x7F).all()

    def test_padded_mostly_zero_bytes(self, rng):
        lines = generate_lines("padded", 200, rng)
        zb = zero_byte_fraction(lines)
        assert 0.7 < zb < 0.9

    def test_pointer_lines_share_high_bytes(self, rng):
        lines = generate_lines("pointer", 50, rng)
        high = lines >> np.uint64(48)
        assert (high == high[:, :1]).all()

    def test_float64_decodes_to_floats(self, rng):
        lines = generate_lines("float64", 20, rng)
        values = lines.view(np.float64)
        assert np.isfinite(values).all()
        assert (np.abs(values) > 0).all()


class TestSkippableGroupsTable:
    """SKIPPABLE_GROUPS is the analytic calibration model — verify every
    entry against the actual transformation pipeline."""

    @pytest.mark.parametrize("name", sorted(SKIPPABLE_GROUPS))
    def test_table_matches_pipeline(self, name, rng):
        ebdi = EbdiCodec()
        bitplane = BitPlaneTransform()
        lines = generate_lines(name, 2048, rng)
        encoded = bitplane.apply(ebdi.encode(lines, CellType.TRUE))
        # A word position is skippable if it is zero in EVERY line
        # (block coupling over a pure region of this class).
        word_all_zero = (encoded == 0).all(axis=0)
        assert int(word_all_zero.sum()) == SKIPPABLE_GROUPS[name], (
            f"{name}: pipeline gives {int(word_all_zero.sum())} "
            f"discharged word positions, table says {SKIPPABLE_GROUPS[name]}"
        )


class TestZeroMetrics:
    def test_zero_byte_fraction(self):
        lines = np.zeros((4, 8), dtype=np.uint64)
        assert zero_byte_fraction(lines) == 1.0
        lines[:] = 0xFFFFFFFFFFFFFFFF
        assert zero_byte_fraction(lines) == 0.0

    def test_zero_block_fraction(self):
        lines = np.zeros((32, 8), dtype=np.uint64)  # 2 KB -> 2 blocks
        lines[16:] = 1
        assert zero_block_fraction(lines, 1024) == pytest.approx(0.5)

    def test_zero_block_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            zero_block_fraction(np.zeros((1, 8), dtype=np.uint64), 1024)
