"""Tests for the working-set access-trace generator."""

import numpy as np
import pytest

from repro.workloads.access import AccessTrace, WorkingSetTraceGenerator


@pytest.fixture
def generator():
    return WorkingSetTraceGenerator(
        working_set_pages=np.arange(100, 200),
        accesses_per_window=5000,
        write_fraction=0.25,
        rng=np.random.default_rng(0),
    )


class TestAccessTrace:
    def test_reads_writes_partition(self):
        trace = AccessTrace(
            line_addrs=np.array([1, 2, 3, 4]),
            is_write=np.array([True, False, True, False]),
        )
        np.testing.assert_array_equal(trace.writes, [1, 3])
        np.testing.assert_array_equal(trace.reads, [2, 4])
        assert len(trace) == 4

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace(np.arange(3), np.array([True]))


class TestWorkingSetTraceGenerator:
    def test_addresses_stay_in_working_set(self, generator):
        trace = generator.window_trace()
        pages = trace.line_addrs // 64
        assert set(np.unique(pages)) <= set(range(100, 200))

    def test_write_fraction_respected(self, generator):
        trace = generator.window_trace()
        assert trace.is_write.mean() == pytest.approx(0.25, abs=0.03)

    def test_zipf_concentrates_on_head_pages(self):
        generator = WorkingSetTraceGenerator(
            working_set_pages=np.arange(1000),
            accesses_per_window=20_000,
            zipf_s=1.2,
            rng=np.random.default_rng(1),
        )
        trace = generator.window_trace()
        pages = trace.line_addrs // 64
        head_share = (pages < 100).mean()
        assert head_share > 0.5

    def test_uniform_when_zipf_zero(self):
        generator = WorkingSetTraceGenerator(
            working_set_pages=np.arange(100),
            accesses_per_window=50_000,
            zipf_s=0.0,
            rng=np.random.default_rng(2),
        )
        trace = generator.window_trace()
        pages = trace.line_addrs // 64
        counts = np.bincount(pages, minlength=100)
        assert counts.min() > counts.max() * 0.6

    def test_touched_pages(self, generator):
        trace = generator.window_trace(100)
        touched = generator.touched_pages(trace)
        assert len(touched) <= 100
        assert (np.diff(touched) > 0).all()

    def test_custom_access_count(self, generator):
        assert len(generator.window_trace(17)) == 17

    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            WorkingSetTraceGenerator(working_set_pages=np.array([]))

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ValueError):
            WorkingSetTraceGenerator(np.arange(10), write_fraction=1.5)
