"""Tests for benchmark profiles and their calibration anchors."""

import numpy as np
import pytest

from repro.workloads.benchmarks import (
    PROFILES,
    BenchmarkProfile,
    benchmark_profile,
    suite_average_reduction,
)
from repro.workloads.synthetic import zero_block_fraction, zero_byte_fraction


class TestSuiteComposition:
    def test_suite_counts_match_paper(self):
        """17 SPEC CPU2006 + 2 NPB + 4 TPC-H benchmarks (Sec. VI-A)."""
        suites = {}
        for profile in PROFILES.values():
            suites[profile.suite] = suites.get(profile.suite, 0) + 1
        assert suites == {"SPEC CPU2006": 17, "NPB": 2, "TPC-H": 4}

    def test_lookup(self):
        assert benchmark_profile("mcf").name == "mcf"
        with pytest.raises(ValueError, match="unknown benchmark"):
            benchmark_profile("nonesuch")

    def test_mixtures_sum_to_one(self):
        for profile in PROFILES.values():
            assert sum(profile.mixture.values()) == pytest.approx(1.0)

    def test_invalid_mixture_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            BenchmarkProfile("x", "s", {"zero": 0.5}, mpki=1.0)
        with pytest.raises(ValueError, match="unknown"):
            BenchmarkProfile("x", "s", {"bogus": 1.0}, mpki=1.0)


class TestCalibrationAnchors:
    def test_suite_average_near_paper(self):
        """Paper Fig. 14: 37.1% average reduction at 100% allocation."""
        assert 0.30 <= suite_average_reduction() <= 0.42

    def test_top_and_bottom_benchmarks(self):
        """Paper: gems/sphinx high; omnetpp, perl, sp.C low."""
        ordered = sorted(PROFILES, key=lambda n: -PROFILES[n].expected_reduction())
        assert "gemsFDTD" in ordered[:4]
        assert "sphinx3" in ordered[:4]
        assert set(ordered[-4:]) >= {"omnetpp", "perlbench", "sp.C"}

    def test_row_size_sensitivity_direction(self):
        """Fig. 18: smaller rows -> more reduction, monotonically."""
        for profile in PROFILES.values():
            r2 = profile.expected_reduction(2048)
            r4 = profile.expected_reduction(4096)
            r8 = profile.expected_reduction(8192)
            assert r2 >= r4 >= r8

    def test_zero_fraction_anchors(self):
        """Fig. 6: ~43% zero bytes, ~2.3% zero 1KB blocks on average."""
        rng = np.random.default_rng(11)
        zbs, zks = [], []
        for profile in PROFILES.values():
            pages = profile.generate_pages(512, rng)
            lines = pages.reshape(-1, 8)
            zbs.append(zero_byte_fraction(lines))
            zks.append(zero_block_fraction(lines))
        assert 0.33 <= float(np.mean(zbs)) <= 0.52
        assert 0.005 <= float(np.mean(zks)) <= 0.06


class TestGeneration:
    def test_pages_shape(self):
        rng = np.random.default_rng(0)
        pages = benchmark_profile("gcc").generate_pages(130, rng)
        assert pages.shape == (130, 64, 8)
        assert pages.dtype == np.uint64

    def test_segment_classes_cover_exactly(self):
        rng = np.random.default_rng(1)
        profile = benchmark_profile("milc")
        segments = profile.segment_classes(1000, rng)
        assert sum(count for _, count in segments) == 1000

    def test_segment_proportions_match_mixture(self):
        rng = np.random.default_rng(2)
        profile = benchmark_profile("mcf")
        segments = profile.segment_classes(128 * 64, rng)
        totals = {}
        for name, count in segments:
            totals[name] = totals.get(name, 0) + count
        for name, weight in profile.mixture.items():
            assert totals.get(name, 0) / (128 * 64) == pytest.approx(
                weight, abs=0.02
            )

    def test_contamination_inserts_outliers(self):
        rng = np.random.default_rng(3)
        base = benchmark_profile("libquantum")
        clean = BenchmarkProfile(
            base.name, base.suite, base.mixture, base.mpki,
            contamination=((1.0, 0.0),),
        )
        dirty = BenchmarkProfile(
            base.name, base.suite, base.mixture, base.mpki,
            contamination=((1.0, 0.05),),
        )
        assert dirty.expected_reduction() < clean.expected_reduction()
        # generation actually reflects it: count full-width lines in a
        # uniform32 region (any outlier word is > 2**32)
        pages_clean = clean.generate_pages(256, np.random.default_rng(4))
        pages_dirty = dirty.generate_pages(256, np.random.default_rng(4))
        big = np.uint64(1) << np.uint64(33)
        assert (pages_dirty >= big).sum() > (pages_clean >= big).sum()

    def test_expected_reduction_zero_class_uncontaminated(self):
        profile = BenchmarkProfile(
            "z", "s", {"zero": 1.0}, mpki=1.0,
            contamination=((1.0, 0.01),),
        )
        assert profile.expected_reduction() == pytest.approx(1.0)
