"""Tests for the data-center utilisation traces (Table I / Fig. 5)."""

import numpy as np
import pytest

from repro.workloads.datacenter import (
    alibaba_trace,
    bitbrains_trace,
    google_trace,
    paper_traces,
)


class TestTraceMeans:
    """Table I anchors: 70% / 88% / 28% average allocated memory."""

    def test_google_mean(self):
        assert google_trace().mean == pytest.approx(0.70, abs=0.03)

    def test_alibaba_mean(self):
        assert alibaba_trace().mean == pytest.approx(0.88, abs=0.03)

    def test_bitbrains_mean(self):
        assert bitbrains_trace().mean == pytest.approx(0.28, abs=0.03)

    def test_samples_bounded(self):
        for trace in paper_traces().values():
            assert (trace.samples >= 0).all()
            assert (trace.samples <= 1).all()


class TestCdfShapes:
    """Fig. 5 shapes: alibaba tight and high, google mid, bitbrains wide/low."""

    def test_alibaba_concentrated_high(self):
        trace = alibaba_trace()
        assert trace.percentile(10) > 0.8
        assert trace.percentile(90) < 0.95

    def test_google_mid_range(self):
        trace = google_trace()
        assert 0.5 < trace.percentile(10) < 0.7
        assert 0.7 < trace.percentile(90) < 0.9

    def test_bitbrains_low_and_wide(self):
        trace = bitbrains_trace()
        assert trace.percentile(10) < 0.2
        assert trace.percentile(90) < 0.6
        spread = trace.percentile(90) - trace.percentile(10)
        assert spread > 0.2

    def test_cdf_is_monotone(self):
        for trace in paper_traces().values():
            grid, cdf = trace.cdf()
            assert (np.diff(cdf) >= 0).all()
            assert cdf[-1] == pytest.approx(1.0)


class TestBitbrainsFilter:
    def test_cpu_filter_removes_samples(self):
        full = bitbrains_trace(cpu_filter=0.0)
        filtered = bitbrains_trace(cpu_filter=0.30)
        assert len(filtered.samples) < len(full.samples)

    def test_filter_raises_mean(self):
        """Busy VMs hold more memory, so filtering is conservative."""
        full = bitbrains_trace(cpu_filter=0.0)
        filtered = bitbrains_trace(cpu_filter=0.30)
        assert filtered.mean > full.mean

    def test_reproducible_by_seed(self):
        a = bitbrains_trace(seed=1)
        b = bitbrains_trace(seed=1)
        np.testing.assert_array_equal(a.samples, b.samples)
