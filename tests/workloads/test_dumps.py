"""Tests for the binary-dump content loader."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.workloads.dumps import (
    PAGE_BYTES,
    analyze_dump,
    analyze_pages,
    bytes_to_pages,
    load_dump,
)


class TestBytesToPages:
    def test_exact_pages(self):
        blob = bytes(range(256)) * (PAGE_BYTES // 256) * 2
        pages = bytes_to_pages(blob)
        assert pages.shape == (2, 64, 8)
        assert pages.dtype == np.uint64

    def test_content_preserved(self):
        blob = b"\x01" + b"\x00" * (PAGE_BYTES - 1)
        pages = bytes_to_pages(blob)
        assert pages[0, 0, 0] == 1
        assert not pages[0, 1:].any()

    def test_padding(self):
        pages = bytes_to_pages(b"\xff" * 100)
        assert pages.shape == (1, 64, 8)
        raw = pages.view(np.uint8)
        assert raw.ravel()[:100].sum() == 100 * 255
        assert raw.ravel()[100:].sum() == 0

    def test_truncation(self):
        pages = bytes_to_pages(b"\xff" * (PAGE_BYTES + 100), pad=False)
        assert pages.shape == (1, 64, 8)

    def test_n_pages_cut(self):
        blob = b"\x00" * (3 * PAGE_BYTES)
        assert bytes_to_pages(blob, n_pages=2).shape == (2, 64, 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_pages(b"abc", pad=False)


class TestLoadAndAnalyze:
    def test_load_dump(self, tmp_path):
        path = tmp_path / "image.bin"
        path.write_bytes(b"\x2a" * (2 * PAGE_BYTES))
        pages = load_dump(path)
        assert pages.shape == (2, 64, 8)
        assert (pages.view(np.uint8) == 0x2A).all()

    def test_analysis_of_zero_image(self):
        pages = bytes_to_pages(b"\x00" * (4 * PAGE_BYTES))
        analysis = analyze_pages(pages)
        assert analysis.zero_byte_frac == 1.0
        assert analysis.zero_1kb_frac == 1.0
        assert analysis.skippable_word_frac == 1.0
        assert analysis.delta_bits_p90 == 0.0

    def test_analysis_of_random_image(self):
        rng = np.random.default_rng(0)
        pages = bytes_to_pages(rng.bytes(8 * PAGE_BYTES))
        analysis = analyze_pages(pages)
        assert analysis.zero_byte_frac < 0.02
        assert analysis.skippable_word_frac < 0.02
        assert analysis.delta_bits_p50 > 60

    def test_analysis_of_structured_image(self):
        """An image of small ints shows high skippability."""
        values = np.arange(4 * PAGE_BYTES // 8, dtype=np.uint64) % 251
        pages = bytes_to_pages(values.tobytes())
        analysis = analyze_pages(pages)
        assert analysis.skippable_word_frac > 0.6
        assert "discharged words" in analysis.summary()

    def test_analyze_dump_file(self, tmp_path):
        path = tmp_path / "z.bin"
        path.write_bytes(b"\x00" * PAGE_BYTES)
        assert analyze_dump(path).zero_byte_frac == 1.0

    def test_populate_system_with_dump(self, tmp_path):
        """Real-content images drive the full simulator."""
        rng = np.random.default_rng(1)
        half = bytes(2 * PAGE_BYTES)
        other = rng.bytes(2 * PAGE_BYTES)
        path = tmp_path / "mixed.bin"
        path.write_bytes(half + other)
        pages_content = load_dump(path)
        config = SystemConfig.scaled(total_bytes=4 << 20, rows_per_ar=32)
        system = ZeroRefreshSystem(config)
        pages = np.arange(len(pages_content))
        system.controller.populate_pages(pages, pages_content, notify=False)
        for page in pages:
            got = system.read_page(int(page))
            np.testing.assert_array_equal(got, pages_content[page])
