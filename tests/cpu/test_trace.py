"""Tests for the program-trace format and trace-driven driver."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.cpu.trace import ProgramTrace, TraceDrivenDriver
from repro.workloads.benchmarks import benchmark_profile


class TestProgramTrace:
    def test_generate_shapes(self):
        rng = np.random.default_rng(0)
        trace = ProgramTrace.generate(np.arange(50), 1000, num_cores=4,
                                      rng=rng)
        assert len(trace) == 1000
        assert trace.num_cores == 4
        assert (trace.line_addr // 64 < 50).all()

    def test_write_fraction(self):
        rng = np.random.default_rng(1)
        trace = ProgramTrace.generate(np.arange(10), 20_000,
                                      write_fraction=0.3, rng=rng)
        assert trace.is_write.mean() == pytest.approx(0.3, abs=0.02)

    def test_slice(self):
        rng = np.random.default_rng(2)
        trace = ProgramTrace.generate(np.arange(10), 100, rng=rng)
        part = trace.slice(10, 20)
        assert len(part) == 10
        np.testing.assert_array_equal(part.line_addr, trace.line_addr[10:20])

    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        trace = ProgramTrace.generate(np.arange(10), 500, rng=rng)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ProgramTrace.load(path)
        np.testing.assert_array_equal(loaded.core, trace.core)
        np.testing.assert_array_equal(loaded.line_addr, trace.line_addr)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            ProgramTrace(np.zeros(2, dtype=np.int8), np.zeros(3),
                         np.zeros(3, dtype=bool))


class TestTraceDrivenDriver:
    @pytest.fixture
    def system(self):
        config = SystemConfig.scaled(total_bytes=4 << 20, rows_per_ar=32,
                                     seed=0)
        system = ZeroRefreshSystem(config)
        system.populate(benchmark_profile("gcc"), allocated_fraction=1.0,
                        accesses_per_window=0)
        return system

    def test_replay_reaches_dram(self, system):
        driver = TraceDrivenDriver(system)
        rng = np.random.default_rng(4)
        pages = system.allocator.allocated_pages[:32]
        trace = ProgramTrace.generate(pages, 3000, rng=rng)
        driver.replay(trace)
        assert driver.dram_reads > 0

    def test_run_produces_refresh_stats(self, system):
        driver = TraceDrivenDriver(system)
        rng = np.random.default_rng(5)
        pages = system.allocator.allocated_pages[:32]
        trace = ProgramTrace.generate(pages, 2000, rng=rng)
        stats = driver.run(trace, n_windows=2)
        assert stats.windows == 2
        assert stats.groups_total > 0

    def test_cache_filtering_reduces_dram_traffic(self, system):
        """Hot accesses must mostly hit in cache: far fewer DRAM events
        than trace accesses."""
        driver = TraceDrivenDriver(system)
        rng = np.random.default_rng(6)
        pages = system.allocator.allocated_pages[:4]  # tiny hot set
        trace = ProgramTrace.generate(pages, 10_000, rng=rng)
        driver.replay(trace)
        dram_events = driver.dram_reads + driver.dram_writes
        assert dram_events < len(trace) * 0.2

    def test_integrity_preserved(self, system):
        driver = TraceDrivenDriver(system)
        rng = np.random.default_rng(7)
        pages = system.allocator.allocated_pages[:64]
        trace = ProgramTrace.generate(pages, 4000, rng=rng)
        driver.run(trace, n_windows=3)
        assert system.verify_integrity()
