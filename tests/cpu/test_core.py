"""Tests for the analytical IPC model."""

import pytest

from repro.controller.scheduler import BankAvailabilityModel
from repro.cpu.core import AnalyticalCoreModel
from repro.dram.refresh import RefreshStats
from repro.dram.timing import TimingParams
from repro.workloads.benchmarks import benchmark_profile


@pytest.fixture
def model():
    return AnalyticalCoreModel(BankAvailabilityModel(timing=TimingParams()))


class TestIpcModel:
    def test_no_skipping_means_no_speedup(self, model):
        profile = benchmark_profile("mcf")
        stats = RefreshStats(groups_refreshed=100, groups_skipped=0)
        result = model.evaluate(profile, stats)
        assert result.normalized_ipc == pytest.approx(1.0)

    def test_skipping_improves_ipc(self, model):
        profile = benchmark_profile("mcf")
        stats = RefreshStats(groups_refreshed=60, groups_skipped=40,
                             ar_commands=10, status_reads=8, status_writes=2)
        result = model.evaluate(profile, stats)
        assert result.normalized_ipc > 1.0
        assert result.unavailability < result.baseline_unavailability

    def test_memory_bound_gains_more(self, model):
        stats = RefreshStats(groups_refreshed=60, groups_skipped=40,
                             ar_commands=10, status_reads=10)
        gems = model.evaluate(benchmark_profile("gemsFDTD"), stats)
        gobmk = model.evaluate(benchmark_profile("gobmk"), stats)
        assert gems.normalized_ipc > gobmk.normalized_ipc

    def test_gains_in_paper_range(self, model):
        """Full skipping bounds the speedup; the max must sit near the
        paper's +10.8% and the min near +0.3%."""
        stats = RefreshStats(groups_refreshed=0, groups_skipped=100,
                             ar_commands=10, status_reads=10)
        gems = model.evaluate(benchmark_profile("gemsFDTD"), stats)
        gobmk = model.evaluate(benchmark_profile("gobmk"), stats)
        assert 0.08 < gems.normalized_ipc - 1.0 < 0.20
        assert 0.0 < gobmk.normalized_ipc - 1.0 < 0.02

    def test_speedup_percent(self, model):
        profile = benchmark_profile("lbm")
        stats = RefreshStats(groups_refreshed=50, groups_skipped=50,
                             ar_commands=10, status_reads=10)
        result = model.evaluate(profile, stats)
        assert result.speedup_percent == pytest.approx(
            (result.normalized_ipc - 1) * 100
        )

    def test_rejects_negative_unavailability(self, model):
        with pytest.raises(ValueError):
            model.ipc_at(benchmark_profile("mcf"), -0.1)

    def test_baseline_ipc_is_profile_scaled(self, model):
        profile = benchmark_profile("h264ref")
        u = model.availability.baseline_unavailability
        assert model.ipc_at(profile, 0.0) == pytest.approx(profile.base_ipc)
        assert model.ipc_at(profile, u) < profile.base_ipc
