"""Tests for the hybrid (charge + recency) refresh engine extension."""

import numpy as np
import pytest

from repro.baselines.hybrid import HybridRefreshEngine
from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.retention import RetentionTracker
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec
from repro.workloads.benchmarks import benchmark_profile


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=64, rows_per_ar=32, cell_interleave=16)


@pytest.fixture
def parts(geom):
    layout = CellTypeLayout(interleave=16)
    device = DramDevice(geom, layout)
    predictor = CellTypePredictor.from_layout(layout, geom.rows_per_bank)
    codec = ValueTransformCodec(predictor)
    return device, codec


def populate_random(device, codec, seed=0):
    geom = device.geometry
    rng = np.random.default_rng(seed)
    for bank in range(geom.num_banks):
        for row in range(geom.rows_per_bank):
            lines = rng.integers(0, 2**64, size=(geom.lines_per_row, 8),
                                 dtype=np.uint64)
            device.write_row(bank, row, codec.encode_row(lines, row))


class TestHybridEngine:
    def test_recency_skips_charged_rows(self, parts, geom):
        """Random (never-skippable) content still skips when the whole
        block was activated this window."""
        device, codec = parts
        populate_random(device, codec)
        engine = HybridRefreshEngine(device)
        engine.run_window(0.0)
        base = engine.run_window(engine.timing.tret_s)
        assert base.groups_skipped == 0  # pure charge-awareness: nothing
        # activate every row of bank 0 (e.g. a streaming scan)
        for row in range(geom.rows_per_bank):
            device.read_line(0, row, 0, 2 * engine.timing.tret_s)
        stats = engine.run_window(2 * engine.timing.tret_s)
        assert stats.groups_skipped == geom.rows_per_bank
        assert engine.recency_skips == geom.rows_per_bank

    def test_partial_block_activation_does_not_skip(self, parts, geom):
        """Group granularity: one stale row in a diagonal blocks the skip."""
        device, codec = parts
        populate_random(device, codec)
        engine = HybridRefreshEngine(device)
        engine.run_window(0.0)
        # touch 7 of the 8 rows of the first block
        for row in range(geom.num_chips - 1):
            device.read_line(0, row, 0, engine.timing.tret_s)
        stats = engine.run_window(engine.timing.tret_s)
        assert stats.groups_skipped == 0

    def test_recency_decays_after_one_window(self, parts, geom):
        device, codec = parts
        populate_random(device, codec)
        engine = HybridRefreshEngine(device)
        engine.run_window(0.0)
        for row in range(geom.rows_per_bank):
            device.read_line(0, row, 0, engine.timing.tret_s)
        engine.run_window(engine.timing.tret_s)
        stats = engine.run_window(2 * engine.timing.tret_s)
        assert stats.groups_skipped == 0

    def test_integrity_with_guard_band(self, parts, geom):
        """With retention = 2x the window (the hybrid's precondition),
        recency skipping never loses data."""
        device, codec = parts
        populate_random(device, codec)
        engine = HybridRefreshEngine(device)
        tracker = RetentionTracker(device, 2 * engine.timing.tret_s)
        t = 0.0
        for i in range(4):
            for row in range(geom.rows_per_bank):
                device.read_line(0, row, 0, t + 0.001)
            engine.run_window(t)
            t += engine.timing.tret_s
            assert not tracker.decay(t).data_loss

    def test_violation_without_guard_band(self, parts, geom):
        """A single burst of activations, then silence: the skipped
        refresh stretches the recharge gap past one window.  Unsound
        without the retention margin; sound with it."""
        device, codec = parts
        populate_random(device, codec)
        engine = HybridRefreshEngine(device)
        window = engine.timing.tret_s
        engine.run_window(0.0)
        # A late burst of activations in window 1...
        for row in range(geom.rows_per_bank):
            device.read_line(0, row, 0, 0.99 * window)
        # ...lets window 2 skip those rows for recency.  Their recharge
        # gap now runs from 0.99 W to their window-3 slot: > 1 window.
        engine.run_window(window)
        now = 2 * window
        assert RetentionTracker(device, 2 * window).verify_no_loss(now)
        assert not RetentionTracker(device, window).verify_no_loss(now)


class TestHybridSystem:
    def test_hybrid_mode_at_least_as_good(self):
        results = {}
        for mode in ("zero-refresh", "hybrid"):
            config = SystemConfig.scaled(total_bytes=8 << 20, rows_per_ar=32,
                                         seed=3, refresh_mode=mode)
            system = ZeroRefreshSystem(config)
            system.populate(benchmark_profile("mcf"),
                            working_set_fraction=0.2, write_fraction=0.1)
            results[mode] = system.run_windows(3)
            assert system.verify_integrity()
        assert (results["hybrid"].normalized_refresh
                <= results["zero-refresh"].normalized_refresh + 0.01)

    def test_hybrid_retention_tracker_uses_guard_band(self):
        config = SystemConfig.scaled(total_bytes=8 << 20, rows_per_ar=32,
                                     refresh_mode="hybrid")
        system = ZeroRefreshSystem(config)
        assert system.retention.tret_s == pytest.approx(
            2 * config.timing.tret_s
        )
