"""Tests for the zero-indicator-bit baseline (Patel et al.)."""

import numpy as np
import pytest

from repro.baselines.zero_indicator import ZeroIndicatorScheme
from repro.workloads.benchmarks import benchmark_profile


class TestZeroIndicatorScheme:
    def test_area_overhead_range(self):
        assert ZeroIndicatorScheme(8).area_overhead == pytest.approx(1 / 8)
        assert ZeroIndicatorScheme(32).area_overhead == pytest.approx(1 / 32)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            ZeroIndicatorScheme(4)

    def test_segment_fraction_on_known_content(self):
        scheme = ZeroIndicatorScheme(32)
        lines = np.zeros((16, 8), dtype=np.uint64)
        lines[8:] = 0xFFFFFFFFFFFFFFFF
        assert scheme.segment_zero_fraction(lines) == pytest.approx(0.5)

    def test_row_skip_needs_whole_zero_row(self):
        scheme = ZeroIndicatorScheme(32)
        pages = np.zeros((2, 64, 8), dtype=np.uint64)
        pages[1, 0, 0] = 1  # single non-zero word spoils its row
        assert scheme.row_skip_fraction(pages) == pytest.approx(0.5)

    def test_much_weaker_than_zero_refresh_on_benchmarks(self):
        """Raw zero rows are rare (paper: ~2.3% of 1KB blocks), so the
        prior scheme skips far less than transformed ZERO-REFRESH."""
        scheme = ZeroIndicatorScheme(32)
        rng = np.random.default_rng(0)
        profile = benchmark_profile("mcf")
        pages = profile.generate_pages(512, rng)
        raw_skip = scheme.row_skip_fraction(pages)
        assert raw_skip < 0.1
        assert raw_skip < profile.expected_reduction() / 2

    def test_area_overhead_dwarfs_zero_refresh_tracking(self):
        """1/32 of capacity vs 1 bit per 4KB row (1/32768)."""
        scheme = ZeroIndicatorScheme(32)
        zero_refresh_overhead = 1 / (4096 * 8)
        assert scheme.area_overhead > 1000 * zero_refresh_overhead
