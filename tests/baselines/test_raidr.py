"""Tests for the RAIDR baseline and its VRT exposure."""

import numpy as np
import pytest

from repro.baselines.raidr import RaidrScheduler
from repro.dram.variation import RetentionProfile, VrtProcess


@pytest.fixture
def profile():
    return RetentionProfile.sample(8192, rng=np.random.default_rng(0))


class TestBinning:
    def test_most_rows_land_in_slow_bin(self, profile):
        scheduler = RaidrScheduler(profile)
        histogram = scheduler.bin_histogram()
        assert histogram[-1] > 0.8 * len(profile.row_retention_s)

    def test_guardband_moves_rows_to_faster_bins(self, profile):
        loose = RaidrScheduler(profile, guardband=1.0)
        tight = RaidrScheduler(profile, guardband=4.0)
        assert tight.bin_histogram()[-1] <= loose.bin_histogram()[-1]

    def test_expected_reduction_substantial(self, profile):
        """RAIDR's selling point: most refreshes disappear."""
        scheduler = RaidrScheduler(profile)
        assert scheduler.expected_reduction() > 0.5

    def test_rejects_bad_periods(self, profile):
        with pytest.raises(ValueError):
            RaidrScheduler(profile, bin_periods_s=(0.0, 0.1))


class TestScheduling:
    def test_measured_matches_expected(self, profile):
        scheduler = RaidrScheduler(profile)
        stats = scheduler.run(8)
        assert stats.reduction() == pytest.approx(
            scheduler.expected_reduction(), abs=0.05
        )

    def test_window_zero_refreshes_everything(self, profile):
        scheduler = RaidrScheduler(profile)
        delta = scheduler.run_window()
        assert delta.refreshes_performed == len(profile.row_retention_s)

    def test_fast_bin_refreshes_every_window(self, profile):
        scheduler = RaidrScheduler(profile)
        fast_rows = int((scheduler.row_bins == 0).sum())
        scheduler.run_window()
        delta = scheduler.run_window()  # window 1: only bin-0 due
        assert delta.refreshes_performed >= fast_rows


class TestVrtExposure:
    def test_static_profile_accumulates_unsafe_rows(self, profile):
        """Hours of VRT leave binned rows below their assigned period —
        the reliability debt the paper charges retention-aware schemes."""
        scheduler = RaidrScheduler(profile)
        vrt = VrtProcess(profile, flips_per_row_per_hour=0.05,
                         rng=np.random.default_rng(1))
        # simulate ~2 hours of windows cheaply: advance VRT in bulk
        vrt.advance(2 * 3600.0)
        unsafe = vrt.unsafe_rows(scheduler.assigned_period_s)
        assert len(unsafe) > 0
        stats = scheduler.run(4, vrt=vrt)
        assert stats.unsafe_row_windows > 0

    def test_zero_refresh_immunity_argument(self, profile):
        """ZERO-REFRESH skips only discharged rows; their retention is
        irrelevant, so VRT cannot make a skipped row unsafe.  (The
        charged rows keep the standard 64 ms schedule, which the floor
        guarantee covers by construction.)"""
        vrt = VrtProcess(profile, flips_per_row_per_hour=0.2,
                         rng=np.random.default_rng(2))
        vrt.advance(10 * 3600.0)
        standard_period = np.full(len(profile.row_retention_s), 0.064)
        # even after heavy VRT, nothing sits below the standard period
        assert len(vrt.unsafe_rows(standard_period)) == 0
