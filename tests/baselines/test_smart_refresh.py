"""Tests for the Smart Refresh baseline."""

import numpy as np
import pytest

from repro.baselines.smart_refresh import SmartRefreshTracker
from repro.dram.geometry import DramGeometry


@pytest.fixture
def geom():
    return DramGeometry(rows_per_bank=256, rows_per_ar=128, cell_interleave=64)


class TestSmartRefreshTracker:
    def test_no_accesses_refreshes_everything(self, geom):
        tracker = SmartRefreshTracker(geom)
        stats = tracker.run_window()
        assert stats.groups_refreshed == geom.total_rows
        assert stats.groups_skipped == 0

    def test_accessed_rows_skip_next_window(self, geom):
        tracker = SmartRefreshTracker(geom)
        tracker.note_access(0, 10)
        tracker.note_access(1, 20)
        stats = tracker.run_window()
        assert stats.groups_skipped == 2
        assert stats.groups_refreshed == geom.total_rows - 2

    def test_counters_decay(self, geom):
        tracker = SmartRefreshTracker(geom)
        tracker.note_access(0, 10)
        tracker.run_window()
        stats = tracker.run_window()  # no new access
        assert stats.groups_skipped == 0

    def test_vectorised_accesses(self, geom):
        tracker = SmartRefreshTracker(geom)
        tracker.note_accesses(np.array([0, 0, 3]), np.array([1, 2, 3]))
        stats = tracker.run_window()
        assert stats.groups_skipped == 3

    def test_effectiveness_is_touched_fraction(self, geom):
        """The Fig. 19 scaling property: benefit == touched fraction."""
        tracker = SmartRefreshTracker(geom)
        rng = np.random.default_rng(0)
        banks = rng.integers(0, geom.num_banks, size=500)
        rows = rng.integers(0, geom.rows_per_bank, size=500)
        tracker.note_accesses(banks, rows)
        touched = len({(b, r) for b, r in zip(banks.tolist(), rows.tolist())})
        stats = tracker.run_window()
        assert stats.groups_skipped == touched
        assert stats.normalized_refresh() == pytest.approx(
            1 - touched / geom.total_rows
        )

    def test_table_cost(self, geom):
        tracker = SmartRefreshTracker(geom)
        assert tracker.table_bits == geom.total_rows * 2

    def test_stats_accumulate(self, geom):
        tracker = SmartRefreshTracker(geom)
        tracker.run_window()
        tracker.run_window()
        assert tracker.stats.windows == 2
        assert tracker.stats.groups_refreshed == 2 * geom.total_rows
