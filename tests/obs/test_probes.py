"""Tests for the probe bus and its process-wide activation."""

import io
import json

import pytest

from repro.obs import (
    NULL_PROBES,
    JsonlTraceSink,
    ProbeBus,
    get_probes,
    instrument,
    use_probes,
)


class TestCounters:
    def test_accumulate(self):
        bus = ProbeBus()
        bus.count("refresh.ar_commands")
        bus.count("refresh.ar_commands", 3)
        bus.count("energy.refresh_nj", 2.5)
        assert bus.counters == {"refresh.ar_commands": 4,
                                "energy.refresh_nj": 2.5}

    def test_snapshot_sorted(self):
        bus = ProbeBus()
        bus.count("b.two")
        bus.count("a.one")
        snap = bus.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        assert snap["events"] == 0


class TestPhases:
    def test_wall_time_accumulates_per_name(self):
        bus = ProbeBus()
        with bus.phase("measure"):
            pass
        with bus.phase("measure"):
            pass
        with bus.phase("populate"):
            pass
        assert set(bus.wall_times) == {"measure", "populate"}
        assert bus.wall_times["measure"] >= 0.0

    def test_accumulates_on_exception(self):
        bus = ProbeBus()
        with pytest.raises(RuntimeError):
            with bus.phase("measure"):
                raise RuntimeError
        assert "measure" in bus.wall_times

    def test_profile_report(self):
        bus = ProbeBus()
        assert bus.profile_report() == "profile: no phases recorded"
        with bus.phase("measure"):
            pass
        assert bus.profile_report().startswith("profile: measure ")


class TestTrace:
    def test_events_only_reach_an_attached_sink(self):
        bus = ProbeBus()
        assert not bus.tracing
        bus.event("refresh.ar", bank=0)  # silently dropped

        buffer = io.StringIO()
        bus = ProbeBus(trace=JsonlTraceSink(buffer))
        assert bus.tracing
        bus.event("refresh.ar", bank=0, t=0.064)
        bus.event("refresh.ar", bank=1, t=0.064)
        lines = [json.loads(line) for line in
                 buffer.getvalue().strip().splitlines()]
        assert [rec["seq"] for rec in lines] == [0, 1]
        assert lines[0] == {"bank": 0, "event": "refresh.ar",
                            "seq": 0, "t": 0.064}

    def test_sink_writes_file_and_counts(self, tmp_path):
        path = tmp_path / "trace" / "run.jsonl"
        sink = JsonlTraceSink(path)
        bus = ProbeBus(trace=sink)
        bus.event("sim.window", index=0)
        bus.close()
        assert sink.events_written == 1
        assert json.loads(path.read_text())["event"] == "sim.window"


class TestNullProbes:
    def test_noop_everything(self):
        NULL_PROBES.count("x", 5)
        NULL_PROBES.event("x", a=1)
        with NULL_PROBES.phase("measure"):
            pass
        assert NULL_PROBES.counters == {}
        assert NULL_PROBES.wall_times == {}
        assert not NULL_PROBES.tracing
        assert NULL_PROBES.snapshot()["counters"] == {}


class TestAmbientBus:
    def test_default_is_null(self):
        assert get_probes() is NULL_PROBES

    def test_use_probes_installs_and_restores(self):
        outer, inner = ProbeBus(), ProbeBus()
        with use_probes(outer):
            assert get_probes() is outer
            with use_probes(inner):
                assert get_probes() is inner
            assert get_probes() is outer
        assert get_probes() is NULL_PROBES

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_probes(ProbeBus()):
                raise RuntimeError
        assert get_probes() is NULL_PROBES

    def test_instrument_builds_installs_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with instrument(trace=path) as bus:
            assert get_probes() is bus
            bus.event("sim.window", index=0)
        assert get_probes() is NULL_PROBES
        assert path.read_text().count("\n") == 1
