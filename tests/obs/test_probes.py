"""Tests for the probe bus and its process-wide activation."""

import io
import json

import pytest

from repro.obs import (
    NULL_PROBES,
    JsonlTraceSink,
    ListTraceSink,
    ProbeBus,
    get_probes,
    instrument,
    use_probes,
)


class TestCounters:
    def test_accumulate(self):
        bus = ProbeBus()
        bus.count("refresh.ar_commands")
        bus.count("refresh.ar_commands", 3)
        bus.count("energy.refresh_nj", 2.5)
        assert bus.counters == {"refresh.ar_commands": 4,
                                "energy.refresh_nj": 2.5}

    def test_snapshot_sorted(self):
        bus = ProbeBus()
        bus.count("b.two")
        bus.count("a.one")
        snap = bus.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        assert snap["events"] == 0


class TestPhases:
    def test_wall_time_accumulates_per_name(self):
        bus = ProbeBus()
        with bus.phase("measure"):
            pass
        with bus.phase("measure"):
            pass
        with bus.phase("populate"):
            pass
        assert set(bus.wall_times) == {"measure", "populate"}
        assert bus.wall_times["measure"] >= 0.0

    def test_accumulates_on_exception(self):
        bus = ProbeBus()
        with pytest.raises(RuntimeError):
            with bus.phase("measure"):
                raise RuntimeError
        assert "measure" in bus.wall_times

    def test_profile_report(self):
        bus = ProbeBus()
        assert bus.profile_report() == "profile: no phases recorded"
        with bus.phase("measure"):
            pass
        assert bus.profile_report().startswith("profile: measure ")


class TestTrace:
    def test_events_only_reach_an_attached_sink(self):
        bus = ProbeBus()
        assert not bus.tracing
        bus.event("refresh.ar", bank=0)  # silently dropped

        buffer = io.StringIO()
        bus = ProbeBus(trace=JsonlTraceSink(buffer))
        assert bus.tracing
        bus.event("refresh.ar", bank=0, t=0.064)
        bus.event("refresh.ar", bank=1, t=0.064)
        lines = [json.loads(line) for line in
                 buffer.getvalue().strip().splitlines()]
        assert [rec["seq"] for rec in lines] == [0, 1]
        assert lines[0] == {"bank": 0, "event": "refresh.ar",
                            "seq": 0, "t": 0.064}

    def test_sink_writes_file_and_counts(self, tmp_path):
        path = tmp_path / "trace" / "run.jsonl"
        sink = JsonlTraceSink(path)
        bus = ProbeBus(trace=sink)
        bus.event("sim.window", index=0)
        bus.close()
        assert sink.events_written == 1
        assert json.loads(path.read_text())["event"] == "sim.window"


class TestSinks:
    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "run.jsonl")
        sink.emit({"event": "x"})
        sink.close()
        sink.close()  # must not raise on an already-closed file
        assert sink.events_written == 1

    def test_jsonl_sink_pins_utf8(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlTraceSink(path)
        assert sink._fh.encoding.lower().replace("-", "") == "utf8"
        sink.emit({"event": "sim.window", "label": "tRETµ"})
        sink.close()
        assert "tRET" in path.read_text(encoding="utf-8")

    def test_list_sink_keeps_records(self):
        sink = ListTraceSink()
        bus = ProbeBus(trace=sink)
        bus.event("refresh.ar", bank=2, t=0.032)
        bus.close()
        assert sink.events_written == 1
        assert sink.records == [{"bank": 2, "event": "refresh.ar",
                                 "seq": 0, "t": 0.032}]


class TestHistogramsAndGauges:
    def test_observe_uses_registered_bounds(self):
        bus = ProbeBus()
        bus.observe("sim.window_skip_rate", 0.45)
        bus.observe("sim.window_skip_rate", 0.05)
        hist = bus.histograms["sim.window_skip_rate"]
        assert hist.count == 2
        assert hist.counts[0] == 1  # <= 0.1
        assert hist.counts[4] == 1  # <= 0.5

    def test_observe_many(self):
        bus = ProbeBus()
        bus.observe_many("x", [0.5, 1.5, 2.0], bounds=(1.0, 2.0))
        hist = bus.histograms["x"]
        assert hist.counts == [1, 2, 0]
        assert hist.sum == pytest.approx(4.0)

    def test_gauge_envelope(self):
        bus = ProbeBus()
        bus.gauge("sys.allocated_fraction", 0.7)
        bus.gauge("sys.allocated_fraction", 0.3)
        gauge = bus.gauges["sys.allocated_fraction"]
        assert (gauge.last, gauge.min, gauge.max, gauge.n) == (0.3, 0.3, 0.7, 2)

    def test_snapshot_includes_both(self):
        bus = ProbeBus()
        bus.observe("h", 1.0, bounds=(2.0,))
        bus.gauge("g", 5)
        snap = bus.snapshot()
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["gauges"]["g"]["last"] == 5.0


class TestForkAbsorb:
    def test_fork_captures_separately_events_flow_to_parent(self):
        sink = ListTraceSink()
        parent = ProbeBus(trace=sink)
        parent.event("a")
        child = parent.fork()
        assert child.tracing
        child.count("sim.windows")
        child.event("b")
        parent.event("c")
        # parent's seq numbering stays monotone across the fork
        assert [rec["seq"] for rec in sink.records] == [0, 1, 2]
        assert "sim.windows" not in parent.counters
        parent.absorb(child)
        assert parent.counters["sim.windows"] == 1

    def test_absorb_merges_all_metric_kinds(self):
        parent, child = ProbeBus(), ProbeBus()
        parent.count("c", 1)
        child.count("c", 2)
        child.observe("h", 0.5, bounds=(1.0,))
        child.gauge("g", 3)
        with child.phase("measure"):
            pass
        parent.absorb(child)
        assert parent.counters["c"] == 3
        assert parent.histograms["h"].count == 1
        assert parent.gauges["g"].last == 3.0
        assert "measure" in parent.wall_times

    def test_merge_snapshot_replays_without_phases_or_events(self):
        source = ProbeBus()
        source.count("c", 2)
        source.observe("h", 0.5, bounds=(1.0,))
        source.gauge("g", 4)
        with source.phase("measure"):
            pass
        target = ProbeBus()
        target.merge_snapshot(source.snapshot())
        assert target.counters == {"c": 2}
        assert target.histograms["h"].count == 1
        assert target.gauges["g"].last == 4.0
        assert target.wall_times == {}
        assert target.snapshot()["events"] == 0


class TestNullProbes:
    def test_noop_everything(self):
        NULL_PROBES.count("x", 5)
        NULL_PROBES.event("x", a=1)
        NULL_PROBES.observe("x", 1.0)
        NULL_PROBES.observe_many("x", [1.0, 2.0])
        NULL_PROBES.gauge("x", 1.0)
        with NULL_PROBES.phase("measure"):
            pass
        assert NULL_PROBES.counters == {}
        assert NULL_PROBES.wall_times == {}
        assert NULL_PROBES.histograms == {}
        assert NULL_PROBES.gauges == {}
        assert not NULL_PROBES.tracing
        assert NULL_PROBES.snapshot()["counters"] == {}

    def test_mappings_are_read_only(self):
        # an accidental write through NULL_PROBES must raise instead of
        # leaking state into every later reader of the shared singleton
        with pytest.raises(TypeError):
            NULL_PROBES.counters["x"] = 1
        with pytest.raises(TypeError):
            NULL_PROBES.wall_times["x"] = 1.0
        with pytest.raises(TypeError):
            NULL_PROBES.histograms["x"] = None
        with pytest.raises(TypeError):
            NULL_PROBES.gauges["x"] = None
        assert NULL_PROBES.counters == {}


class TestAmbientBus:
    def test_default_is_null(self):
        assert get_probes() is NULL_PROBES

    def test_use_probes_installs_and_restores(self):
        outer, inner = ProbeBus(), ProbeBus()
        with use_probes(outer):
            assert get_probes() is outer
            with use_probes(inner):
                assert get_probes() is inner
            assert get_probes() is outer
        assert get_probes() is NULL_PROBES

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_probes(ProbeBus()):
                raise RuntimeError
        assert get_probes() is NULL_PROBES

    def test_instrument_builds_installs_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with instrument(trace=path) as bus:
            assert get_probes() is bus
            bus.event("sim.window", index=0)
        assert get_probes() is NULL_PROBES
        assert path.read_text().count("\n") == 1
