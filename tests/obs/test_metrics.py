"""Tests for histogram/gauge metric types and the snapshot algebra."""

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    HISTOGRAM_BOUNDS,
    Gauge,
    Histogram,
    bounds_for,
    empty_snapshot,
    iter_snapshot_metrics,
    merge_snapshots,
    register_histogram,
)


class TestHistogram:
    def test_inclusive_upper_bounds_and_overflow(self):
        hist = Histogram((1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0):
            hist.observe(value)
        # Prometheus `le` convention: v <= bound lands in the bucket
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(8.0)
        assert hist.mean == pytest.approx(1.6)

    def test_observe_many_matches_scalar_observe(self):
        values = np.linspace(0.0, 3.0, 37)
        scalar = Histogram((0.5, 1.0, 2.0))
        for value in values:
            scalar.observe(value)
        vector = Histogram((0.5, 1.0, 2.0))
        vector.observe_many(values)
        assert vector.counts == scalar.counts
        assert vector.count == scalar.count
        assert vector.sum == pytest.approx(scalar.sum)

    def test_observe_many_empty_is_noop(self):
        hist = Histogram((1.0,))
        hist.observe_many(np.empty(0))
        assert hist.count == 0

    def test_merge_adds_counts(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_mismatched_bounds(self):
        a, b = Histogram((1.0,)), Histogram((2.0,))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_snapshot_round_trip(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.5)
        clone = Histogram.from_snapshot(hist.snapshot())
        assert clone.counts == hist.counts
        assert clone.bounds == hist.bounds
        assert clone.sum == hist.sum

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(())


class TestGauge:
    def test_envelope(self):
        gauge = Gauge()
        gauge.set(2.0)
        gauge.set(5.0)
        gauge.set(1.0)
        assert (gauge.last, gauge.min, gauge.max, gauge.n) == (1.0, 1.0, 5.0, 3)

    def test_merge_keeps_later_last(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(9.0)
        b.set(3.0)
        a.merge(b)
        assert (a.last, a.min, a.max, a.n) == (3.0, 1.0, 9.0, 3)

    def test_merge_empty_other_is_noop(self):
        a = Gauge()
        a.set(4.0)
        a.merge(Gauge())
        assert (a.last, a.n) == (4.0, 1)

    def test_snapshot_round_trip(self):
        gauge = Gauge()
        gauge.set(1.5)
        clone = Gauge.from_snapshot(gauge.snapshot())
        assert (clone.last, clone.min, clone.max, clone.n) == (1.5, 1.5, 1.5, 1)


class TestBoundsRegistry:
    def test_registered_metrics_have_fixed_bounds(self):
        assert bounds_for("sim.window_skip_rate") == HISTOGRAM_BOUNDS[
            "sim.window_skip_rate"
        ]
        assert bounds_for("unknown.metric") == DEFAULT_BOUNDS

    def test_register_histogram(self):
        register_histogram("test.only_metric", (1, 10, 100))
        try:
            assert bounds_for("test.only_metric") == (1.0, 10.0, 100.0)
        finally:
            del HISTOGRAM_BOUNDS["test.only_metric"]


class TestMergeSnapshots:
    def _snap(self, counter=0, skip=None):
        snap = empty_snapshot()
        if counter:
            snap["counters"]["c"] = counter
        if skip is not None:
            hist = Histogram((0.5, 1.0))
            hist.observe(skip)
            snap["histograms"]["h"] = hist.snapshot()
        return snap

    def test_merge_is_associative_on_counters_and_histograms(self):
        # binary-exact observations so the histogram sums compare equal
        # regardless of addition order
        a, b, c = self._snap(1, 0.25), self._snap(2, 0.75), self._snap(4, 0.875)
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right
        assert left["counters"]["c"] == 7
        assert left["histograms"]["h"]["count"] == 3

    def test_empty_snapshot_is_identity(self):
        snap = self._snap(3, 0.4)
        assert merge_snapshots(snap, empty_snapshot()) == merge_snapshots(snap)

    def test_inputs_not_mutated(self):
        a, b = self._snap(1, 0.2), self._snap(2, 0.7)
        before = (dict(a["counters"]), a["histograms"]["h"]["counts"][:])
        merge_snapshots(a, b)
        assert (dict(a["counters"]), a["histograms"]["h"]["counts"]) == before

    def test_gauge_merge_keeps_later_last(self):
        a, b = empty_snapshot(), empty_snapshot()
        ga, gb = Gauge(), Gauge()
        ga.set(1.0)
        gb.set(7.0)
        a["gauges"]["g"] = ga.snapshot()
        b["gauges"]["g"] = gb.snapshot()
        merged = merge_snapshots(a, b)
        assert merged["gauges"]["g"]["last"] == 7.0
        assert merged["gauges"]["g"]["min"] == 1.0

    def test_invariants_section_merges(self):
        a, b = empty_snapshot(), empty_snapshot()
        a["invariants"] = {"checks": 10, "violation_count": 1,
                           "violations": [{"check": "x"}]}
        b["invariants"] = {"checks": 5, "violation_count": 0,
                           "violations": []}
        merged = merge_snapshots(a, b)
        assert merged["invariants"]["checks"] == 15
        assert merged["invariants"]["violation_count"] == 1
        assert merged["invariants"]["violations"] == [{"check": "x"}]

    def test_no_invariants_section_when_absent(self):
        assert "invariants" not in merge_snapshots(self._snap(1), self._snap(2))


class TestIterSnapshotMetrics:
    def test_dotted_paths(self):
        snap = self._build()
        paths = dict(iter_snapshot_metrics(snap))
        assert paths["counters.c"] == 3
        assert paths["histograms.h.count"] == 1
        assert paths["histograms.h.bucket.0"] == 1
        assert paths["gauges.g.last"] == 2.0
        assert paths["invariants.checks"] == 4

    def _build(self):
        snap = empty_snapshot()
        snap["counters"]["c"] = 3
        hist = Histogram((1.0,))
        hist.observe(0.5)
        snap["histograms"]["h"] = hist.snapshot()
        gauge = Gauge()
        gauge.set(2.0)
        snap["gauges"]["g"] = gauge.snapshot()
        snap["invariants"] = {"checks": 4, "violation_count": 0,
                              "violations": []}
        return snap
