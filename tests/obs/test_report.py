"""Tests for the bench-regression reporter."""

import json

import pytest

from repro.obs.report import (
    DEFAULT_TOLERANCES,
    compare,
    flatten,
    main,
    parse_tolerance_args,
    tolerance_for,
)


class TestFlatten:
    def test_dotted_numeric_leaves(self):
        flat = flatten({
            "counters": {"refresh.ar_commands": 512},
            "histograms": {"h": {"counts": [1, 2], "sum": 0.5}},
            "elapsed_s": 1.25,
        })
        assert flat == {
            "counters.refresh.ar_commands": 512.0,
            "histograms.h.counts.0": 1.0,
            "histograms.h.counts.1": 2.0,
            "histograms.h.sum": 0.5,
            "elapsed_s": 1.25,
        }

    def test_skips_strings_nulls_and_booleans(self):
        flat = flatten({"name": "fig14", "quick": True, "note": None,
                        "n": 3})
        assert flat == {"n": 3.0}


class TestToleranceFor:
    def test_first_match_wins(self):
        tolerances = (("phases.*", None), ("phases.measure", 0.5),
                      ("*", 0.0))
        assert tolerance_for("phases.measure", tolerances) is None
        assert tolerance_for("counters.x", tolerances) == 0.0

    def test_defaults_mark_machine_dependent_info(self):
        assert tolerance_for("elapsed_s", DEFAULT_TOLERANCES) is None
        assert tolerance_for("phases.measure", DEFAULT_TOLERANCES) is None
        assert tolerance_for("engine.cache_hits", DEFAULT_TOLERANCES) is None
        assert tolerance_for("counters.sim.windows",
                             DEFAULT_TOLERANCES) == 0.0


class TestCompare:
    def test_identical_documents_are_ok(self):
        doc = {"counters": {"a": 1, "b": 2.5}, "elapsed_s": 3.0}
        report = compare(doc, json.loads(json.dumps(doc)))
        assert report.ok
        assert {d.status for d in report.deltas} == {"ok", "info"}

    def test_strict_drift_fails(self):
        report = compare({"counters": {"a": 100}}, {"counters": {"a": 101}})
        assert not report.ok
        (delta,) = report.regressions
        assert (delta.path, delta.status) == ("counters.a", "fail")
        assert delta.abs_delta == 1.0
        assert delta.rel_delta == pytest.approx(0.01)

    def test_info_metrics_never_fail(self):
        report = compare({"elapsed_s": 1.0, "phases": {"measure": 2.0}},
                         {"elapsed_s": 9.0, "phases": {"measure": 0.1}})
        assert report.ok
        assert all(d.status == "info" for d in report.deltas)

    def test_within_tolerance_passes(self):
        report = compare({"counters": {"a": 100}}, {"counters": {"a": 104}},
                         tolerances=(("*", 0.05),))
        assert report.ok
        report = compare({"counters": {"a": 100}}, {"counters": {"a": 106}},
                         tolerances=(("*", 0.05),))
        assert not report.ok

    def test_zero_baseline(self):
        # strict: zero must stay zero
        assert not compare({"c": {"a": 0}}, {"c": {"a": 1}}).ok
        assert compare({"c": {"a": 0}}, {"c": {"a": 0}}).ok
        # loose: small absolute excursions from zero are allowed
        assert compare({"c": {"a": 0}}, {"c": {"a": 0.05}},
                       tolerances=(("*", 0.1),)).ok
        delta = compare({"c": {"a": 0}}, {"c": {"a": 1}}).deltas[0]
        assert delta.render_delta() == "new≠0"

    def test_added_metric_is_informational(self):
        report = compare({}, {"counters": {"new": 7}})
        assert report.ok
        assert report.deltas[0].status == "added"

    def test_removed_strict_metric_fails(self):
        report = compare({"counters": {"gone": 7}}, {})
        assert not report.ok
        assert report.regressions[0].status == "removed"

    def test_removed_info_metric_does_not_fail(self):
        report = compare({"elapsed_s": 1.0}, {})
        assert report.ok


class TestMarkdown:
    def test_no_drift_message(self):
        md = compare({"counters": {"a": 1}}, {"counters": {"a": 1}}).to_markdown()
        assert "No metric drift" in md
        assert "OK" in md

    def test_failures_listed_first(self):
        report = compare(
            {"counters": {"a": 1}, "elapsed_s": 1.0},
            {"counters": {"a": 2}, "elapsed_s": 5.0},
        )
        md = report.to_markdown()
        assert "REGRESSION" in md
        rows = [line for line in md.splitlines() if line.startswith("| `")]
        assert rows[0].startswith("| `counters.a`")
        assert "fail" in rows[0]

    def test_row_cap(self):
        baseline = {"c": {f"m{i:03d}": 0 for i in range(30)}}
        current = {"c": {f"m{i:03d}": 1 for i in range(30)}}
        md = compare(baseline, current).to_markdown(max_rows=10)
        assert "… 20 more rows" in md


class TestParseToleranceArgs:
    def test_parses_float_and_info(self):
        assert parse_tolerance_args(["counters.*=0.05", "phases.*=info"]) == [
            ("counters.*", 0.05), ("phases.*", None)
        ]

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="PATTERN=REL"):
            parse_tolerance_args(["nope"])


class TestMain:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc), encoding="utf-8")
        return path

    def test_ok_exit_and_markdown_artifact(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"counters": {"a": 1}})
        curr = self._write(tmp_path / "curr.json", {"counters": {"a": 1}})
        md_out = tmp_path / "delta.md"
        assert main([str(base), str(curr), "--markdown-out", str(md_out)]) == 0
        assert "No metric drift" in md_out.read_text()
        assert "bench-regression: OK" in capsys.readouterr().err

    def test_regression_exit_code(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"counters": {"a": 1}})
        curr = self._write(tmp_path / "curr.json", {"counters": {"a": 2}})
        assert main([str(base), str(curr)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION counters.a" in err

    def test_cli_tolerance_override_rescues(self, tmp_path):
        base = self._write(tmp_path / "base.json", {"counters": {"a": 100}})
        curr = self._write(tmp_path / "curr.json", {"counters": {"a": 101}})
        assert main([str(base), str(curr)]) == 1
        assert main([str(base), str(curr),
                     "--tolerance", "counters.a=0.05"]) == 0
