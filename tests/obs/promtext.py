"""A tiny Prometheus text-format parser used by the exposition tests.

Strict enough to catch real formatting mistakes: every non-comment
line must be ``name[{labels}] value``, names must match the metric
name grammar, and label values must be quoted.
"""

import re

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def parse_prometheus(text):
    """Parse exposition text into ``{name: {"type": t, "samples": [...]}}``.

    Samples are ``(labels_dict, float_value)`` tuples.  Raises
    ``ValueError`` on any line that is not valid exposition format, so
    using this parser *is* the format assertion.
    """
    metrics = {}
    types = {}
    if not text.endswith("\n"):
        raise ValueError("exposition text must end with a newline")
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"invalid exposition line: {line!r}")
        labels = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                label_match = _LABEL_RE.match(part.strip())
                if label_match is None:
                    raise ValueError(f"invalid label in line: {line!r}")
                labels[label_match.group("key")] = label_match.group("value")
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        entry = metrics.setdefault(
            name, {"type": types.get(name) or types.get(base), "samples": []}
        )
        entry["samples"].append((labels, value))
    return metrics


def histogram_view(metrics, name):
    """Return ``(bucket_counts_by_le, total_count, total_sum)`` for a
    histogram metric ``name`` parsed by :func:`parse_prometheus`."""
    buckets = {}
    for labels, value in metrics[f"{name}_bucket"]["samples"]:
        buckets[labels["le"]] = value
    count = metrics[f"{name}_count"]["samples"][0][1]
    total = metrics[f"{name}_sum"]["samples"][0][1]
    return buckets, count, total
