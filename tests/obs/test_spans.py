"""Tests for :mod:`repro.obs.spans`: ids, tracer, store, tree."""

import json

import pytest

from repro.obs.probes import JsonlTraceSink
from repro.obs.spans import (
    ID_WIDTH,
    NULL_TRACER,
    ROOT_PARENT,
    SpanContext,
    SpanTracer,
    append_spans,
    dedupe_spans,
    get_tracer,
    read_spans,
    root_context,
    span_id_for,
    span_path,
    span_tree,
    trace_id_for_run,
    tree_signature,
    use_tracer,
)


class FakeClock:
    """Deterministic wall clock: each call advances one second."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        t = self.now
        self.now += 1.0
        return t


class TestIds:
    def test_trace_id_deterministic_hex(self):
        a = trace_id_for_run("fig17-abc")
        assert a == trace_id_for_run("fig17-abc")
        assert len(a) == ID_WIDTH
        int(a, 16)  # hex
        assert a != trace_id_for_run("fig17-abd")

    def test_span_id_pure_function_of_position(self):
        tid = trace_id_for_run("r")
        a = span_id_for(tid, "p", "job", "digest1")
        assert a == span_id_for(tid, "p", "job", "digest1")
        assert a != span_id_for(tid, "p", "job", "digest2")
        assert a != span_id_for(tid, "q", "job", "digest1")
        assert a != span_id_for(tid, "p", "attempt", "digest1")

    def test_child_and_wire_round_trip(self):
        root = root_context(trace_id_for_run("r"))
        assert root.name == "run" and root.parent_id == ROOT_PARENT
        child = root.child("job", qualifier="d1")
        assert child.parent_id == root.span_id
        assert SpanContext.from_wire(child.to_wire()) == child

    def test_same_position_same_id_across_tracers(self):
        # the property the jobs=1 vs jobs=4 equality rides on
        tid = trace_id_for_run("r")
        a = SpanTracer(tid).context("job", parent=root_context(tid),
                                    qualifier="d1")
        b = SpanTracer(tid).context("job", parent=root_context(tid),
                                    qualifier="d1")
        assert a.span_id == b.span_id


class TestTracer:
    def test_span_records_on_exit_with_duration(self):
        tracer = SpanTracer("t" * 16, clock=FakeClock())
        with tracer.span("run") as ctx:
            pass
        (rec,) = tracer.records
        assert rec["span_id"] == ctx.span_id
        assert rec["name"] == "run"
        assert rec["dur_s"] == 1.0

    def test_nesting_follows_the_ambient_stack(self):
        tracer = SpanTracer("t" * 16, clock=FakeClock())
        with tracer.span("run") as run:
            with tracer.span("job", qualifier="d1") as job:
                assert tracer.current is job
            assert tracer.current is run
        jobs = [r for r in tracer.records if r["name"] == "job"]
        assert jobs[0]["parent_id"] == run.span_id

    def test_occurrence_qualifiers_count_per_parent(self):
        tracer = SpanTracer("t" * 16, clock=FakeClock())
        with tracer.span("attempt", qualifier="1"):
            with tracer.span("warmup"):
                pass
            with tracer.span("measure"):
                pass
            with tracer.span("measure"):
                pass
        qs = [(r["name"], r["q"]) for r in tracer.records]
        assert ("warmup", "0") in qs
        assert ("measure", "0") in qs and ("measure", "1") in qs

    def test_exception_marks_error_and_still_emits(self):
        tracer = SpanTracer("t" * 16, clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("attempt", qualifier="1"):
                raise RuntimeError("boom")
        (rec,) = tracer.records
        assert rec["error"] == "RuntimeError"

    def test_record_span_fabricates_same_id_as_live_span(self):
        clock = FakeClock()
        live = SpanTracer("t" * 16, clock=clock)
        root = root_context("t" * 16)
        with live.span("attempt", parent=root, qualifier="2"):
            pass
        fabricated = SpanTracer("t" * 16).record_span(
            "attempt", parent=root, qualifier="2", t0=0.0, dur_s=0.5,
            error="SimCrash")
        assert fabricated.span_id == live.records[0]["span_id"]

    def test_none_attrs_dropped(self):
        tracer = SpanTracer("t" * 16, clock=FakeClock())
        with tracer.span("run", status="ok", worker=None):
            pass
        (rec,) = tracer.records
        assert rec["status"] == "ok"
        assert "worker" not in rec

    def test_add_records_streams_to_sink(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlTraceSink(path, flush_every=1)
        tracer = SpanTracer("t" * 16, sink=sink, clock=FakeClock())
        tracer.add_records([{"span_id": "abc", "name": "job"}])
        # flush_every=1: on disk before close
        assert json.loads(path.read_text())["span_id"] == "abc"
        tracer.close()

    def test_ambient_tracer_install_and_default(self):
        assert get_tracer() is NULL_TRACER
        tracer = SpanTracer("t" * 16)
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("measure", kernel="k"):
                pass
        assert get_tracer() is NULL_TRACER
        assert tracer.records[0]["kernel"] == "k"

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", deep=1) as ctx:
            assert ctx.span_id == ""
        assert NULL_TRACER.records == []
        assert not NULL_TRACER.enabled


class TestStore:
    def test_append_read_round_trip(self, tmp_path):
        records = [{"span_id": "a", "name": "run", "t0": 1.0},
                   {"span_id": "b", "name": "job", "t0": 2.0}]
        path = append_spans(tmp_path, "run-1", records)
        assert path == span_path(tmp_path, "run-1")
        assert read_spans(path) == records

    def test_read_skips_torn_and_foreign_lines(self, tmp_path):
        path = span_path(tmp_path, "run-1")
        path.parent.mkdir(parents=True)
        path.write_text('{"span_id": "a", "name": "run"}\n'
                        '{"event": "not-a-span"}\n'
                        '{"span_id": "b", "tru')
        assert [r["span_id"] for r in read_spans(path)] == ["a"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_spans(tmp_path / "nope.jsonl") == []

    def test_unsafe_run_id_is_hashed(self, tmp_path):
        path = span_path(tmp_path, "../../etc/passwd")
        assert path.parent == span_path(tmp_path, "ok").parent
        assert path.name.startswith("x")

    def test_dedupe_last_record_wins(self):
        records = [{"span_id": "a", "status": "partial"},
                   {"span_id": "b"},
                   {"span_id": "a", "status": "ok"}]
        deduped = {r["span_id"]: r for r in dedupe_spans(records)}
        assert deduped["a"]["status"] == "ok"
        assert len(deduped) == 2


class TestTree:
    def _records(self):
        tid = trace_id_for_run("r")
        root = root_context(tid)
        job1 = root.child("job", "d1")
        job2 = root.child("job", "d2")
        att = job1.child("attempt", "1")
        mk = (lambda ctx, t0: dict(ctx.to_wire(), q=ctx.qualifier,
                                   t0=t0, dur_s=1.0))
        recs = [mk(root, 0.0), mk(job1, 1.0), mk(job2, 2.0), mk(att, 1.5)]
        for r in recs:
            r.pop("qualifier")
        return recs

    def test_tree_nests_and_sorts_children(self):
        (tree,) = span_tree(self._records())
        assert tree["name"] == "run"
        assert [c["q"] for c in tree["children"]] == ["d1", "d2"]
        assert tree["children"][0]["children"][0]["name"] == "attempt"

    def test_orphans_become_roots(self):
        recs = self._records()
        recs = [r for r in recs if r["name"] != "run"]  # drop the root
        roots = span_tree(recs)
        assert sorted(r["name"] for r in roots) == ["job", "job"]

    def test_signature_ignores_order_and_timings(self):
        recs = self._records()
        shuffled = list(reversed(recs))
        for r in shuffled:
            r["t0"] += 100.0
            r["dur_s"] = 9.9
        assert tree_signature(recs) == tree_signature(shuffled)

    def test_signature_distinguishes_structure(self):
        recs = self._records()
        pruned = [r for r in recs if r["name"] != "attempt"]
        assert tree_signature(recs) != tree_signature(pruned)


class TestJsonlTraceSinkFlushEvery:
    def test_rejects_non_positive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlTraceSink(tmp_path / "t.jsonl", flush_every=0)

    def test_flushes_every_n_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path, flush_every=2)
        sink.emit({"seq": 0})
        sink.emit({"seq": 1})  # second record triggers the flush
        assert len(path.read_text().splitlines()) == 2
        sink.close()

    def test_append_mode_preserves_existing_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        first = JsonlTraceSink(path, flush_every=1)
        first.emit({"seq": 0})
        first.close()
        second = JsonlTraceSink(path, flush_every=1, append=True)
        second.emit({"seq": 1})
        second.close()
        assert len(path.read_text().splitlines()) == 2
