"""Tests for the Prometheus text exposition of probe-bus snapshots.

Also home of :func:`parse_prometheus` / :func:`histogram_view`, the
strict exposition-format parser these tests (and the serve tests)
assert through — it lives here, in a collected test module, so its own
format checks run with the suite instead of sitting in a stray helper.
"""

import re

import pytest

from repro.obs import ProbeBus, merge_snapshots
from repro.obs.metrics import prometheus_text, register_histogram

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def parse_prometheus(text):
    """Parse exposition text into ``{name: {"type": t, "samples": [...]}}``.

    Strict enough to catch real formatting mistakes: every non-comment
    line must be ``name[{labels}] value``, names must match the metric
    name grammar, and label values must be quoted.  Samples are
    ``(labels_dict, float_value)`` tuples.  Raises ``ValueError`` on
    any line that is not valid exposition format, so using this parser
    *is* the format assertion.
    """
    metrics = {}
    types = {}
    if not text.endswith("\n"):
        raise ValueError("exposition text must end with a newline")
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"invalid exposition line: {line!r}")
        labels = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                label_match = _LABEL_RE.match(part.strip())
                if label_match is None:
                    raise ValueError(f"invalid label in line: {line!r}")
                labels[label_match.group("key")] = label_match.group("value")
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        entry = metrics.setdefault(
            name, {"type": types.get(name) or types.get(base), "samples": []}
        )
        entry["samples"].append((labels, value))
    return metrics


def histogram_view(metrics, name):
    """Return ``(bucket_counts_by_le, total_count, total_sum)`` for a
    histogram metric ``name`` parsed by :func:`parse_prometheus`."""
    buckets = {}
    for labels, value in metrics[f"{name}_bucket"]["samples"]:
        buckets[labels["le"]] = value
    count = metrics[f"{name}_count"]["samples"][0][1]
    total = metrics[f"{name}_sum"]["samples"][0][1]
    return buckets, count, total


class TestParserStrictness:
    """The parser must reject malformed exposition text, or every
    test that asserts through it is vacuous."""

    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(ValueError, match="newline"):
            parse_prometheus("repro_x_total 1")

    def test_rejects_invalid_sample_line(self):
        with pytest.raises(ValueError, match="invalid exposition line"):
            parse_prometheus("not a metric line!\n")

    def test_rejects_unquoted_label_value(self):
        with pytest.raises(ValueError, match="invalid label"):
            parse_prometheus('repro_x_total{phase=measure} 1\n')

    def test_parses_inf_and_types(self):
        text = ("# TYPE repro_lat_s histogram\n"
                'repro_lat_s_bucket{le="+Inf"} 5\n')
        metrics = parse_prometheus(text)
        assert metrics["repro_lat_s_bucket"]["type"] == "histogram"
        (labels, value), = metrics["repro_lat_s_bucket"]["samples"]
        assert labels == {"le": "+Inf"} and value == 5.0
        assert parse_prometheus("repro_x +Inf\n")["repro_x"]["samples"] == [
            ({}, float("inf"))
        ]


@pytest.fixture
def sample_bus():
    register_histogram("promtest.latency_s", (0.1, 0.5, 1.0))
    bus = ProbeBus()
    bus.count("refresh.groups_skipped", 42)
    bus.count("cache.hits", 7)
    bus.gauge("sys.depth", 3)
    bus.gauge("sys.depth", 5)
    bus.gauge("sys.depth", 4)
    for value in (0.05, 0.2, 0.3, 0.7, 2.0):
        bus.observe("promtest.latency_s", value)
    with bus.phase("measure"):
        pass
    return bus


class TestPrometheusText:
    def test_parses_and_counters_match(self, sample_bus):
        snapshot = sample_bus.snapshot()
        metrics = parse_prometheus(prometheus_text(snapshot))
        assert metrics["repro_refresh_groups_skipped_total"]["samples"] == [
            ({}, 42.0)
        ]
        assert metrics["repro_refresh_groups_skipped_total"]["type"] == "counter"
        assert metrics["repro_cache_hits_total"]["samples"] == [({}, 7.0)]

    def test_gauge_last_min_max(self, sample_bus):
        metrics = parse_prometheus(prometheus_text(sample_bus.snapshot()))
        assert metrics["repro_sys_depth"]["samples"] == [({}, 4.0)]
        assert metrics["repro_sys_depth"]["type"] == "gauge"
        assert metrics["repro_sys_depth_min"]["samples"] == [({}, 3.0)]
        assert metrics["repro_sys_depth_max"]["samples"] == [({}, 5.0)]

    def test_histogram_buckets_are_cumulative_and_agree_with_snapshot(
        self, sample_bus
    ):
        snapshot = sample_bus.snapshot()
        metrics = parse_prometheus(prometheus_text(snapshot))
        buckets, count, total = histogram_view(
            metrics, "repro_promtest_latency_s"
        )
        hist = snapshot["histograms"]["promtest.latency_s"]
        # cumulative reconstruction of the snapshot's per-bucket counts
        assert buckets["0.1"] == 1
        assert buckets["0.5"] == 3
        assert buckets["1.0"] == 4
        assert buckets["+Inf"] == hist["count"] == count == 5
        assert total == pytest.approx(hist["sum"])
        # monotone cumulative counts
        ordered = [buckets["0.1"], buckets["0.5"], buckets["1.0"],
                   buckets["+Inf"]]
        assert ordered == sorted(ordered)

    def test_phases_and_events(self, sample_bus):
        metrics = parse_prometheus(prometheus_text(sample_bus.snapshot()))
        samples = metrics["repro_phase_seconds_total"]["samples"]
        assert len(samples) == 1
        labels, value = samples[0]
        assert labels == {"phase": "measure"}
        assert value >= 0.0
        assert metrics["repro_events_total"]["samples"] == [({}, 0.0)]

    def test_invariants_section(self):
        snapshot = merge_snapshots({
            "counters": {}, "phases": {}, "events": 0,
            "histograms": {}, "gauges": {},
            "invariants": {"checks": 9, "violation_count": 2,
                           "violations": []},
        })
        metrics = parse_prometheus(prometheus_text(snapshot))
        assert metrics["repro_invariant_checks_total"]["samples"] == [({}, 9.0)]
        assert metrics["repro_invariant_violations_total"]["samples"] == [
            ({}, 2.0)
        ]

    def test_empty_snapshot_renders(self):
        metrics = parse_prometheus(prometheus_text(ProbeBus().snapshot()))
        assert metrics["repro_events_total"]["samples"] == [({}, 0.0)]

    def test_deterministic_output(self, sample_bus):
        snapshot = sample_bus.snapshot()
        assert prometheus_text(snapshot) == prometheus_text(snapshot)

    def test_name_sanitisation(self):
        bus = ProbeBus()
        bus.count("weird-metric.name/with:stuff")
        text = prometheus_text(bus.snapshot())
        assert "repro_weird_metric_name_with_stuff_total 1" in text
        parse_prometheus(text)

    def test_custom_prefix(self, sample_bus):
        text = prometheus_text(sample_bus.snapshot(), prefix="zr")
        metrics = parse_prometheus(text)
        assert "zr_cache_hits_total" in metrics

    def test_unset_gauges_skipped(self):
        bus = ProbeBus()
        snapshot = bus.snapshot()
        snapshot["gauges"]["never.set"] = {"last": None, "min": None,
                                           "max": None, "n": 0}
        metrics = parse_prometheus(prometheus_text(snapshot))
        assert "repro_never_set" not in metrics
