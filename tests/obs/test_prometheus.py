"""Tests for the Prometheus text exposition of probe-bus snapshots."""

import pytest

from repro.obs import ProbeBus, merge_snapshots
from repro.obs.metrics import prometheus_text, register_histogram

from tests.obs.promtext import histogram_view, parse_prometheus


@pytest.fixture
def sample_bus():
    register_histogram("promtest.latency_s", (0.1, 0.5, 1.0))
    bus = ProbeBus()
    bus.count("refresh.groups_skipped", 42)
    bus.count("cache.hits", 7)
    bus.gauge("sys.depth", 3)
    bus.gauge("sys.depth", 5)
    bus.gauge("sys.depth", 4)
    for value in (0.05, 0.2, 0.3, 0.7, 2.0):
        bus.observe("promtest.latency_s", value)
    with bus.phase("measure"):
        pass
    return bus


class TestPrometheusText:
    def test_parses_and_counters_match(self, sample_bus):
        snapshot = sample_bus.snapshot()
        metrics = parse_prometheus(prometheus_text(snapshot))
        assert metrics["repro_refresh_groups_skipped_total"]["samples"] == [
            ({}, 42.0)
        ]
        assert metrics["repro_refresh_groups_skipped_total"]["type"] == "counter"
        assert metrics["repro_cache_hits_total"]["samples"] == [({}, 7.0)]

    def test_gauge_last_min_max(self, sample_bus):
        metrics = parse_prometheus(prometheus_text(sample_bus.snapshot()))
        assert metrics["repro_sys_depth"]["samples"] == [({}, 4.0)]
        assert metrics["repro_sys_depth"]["type"] == "gauge"
        assert metrics["repro_sys_depth_min"]["samples"] == [({}, 3.0)]
        assert metrics["repro_sys_depth_max"]["samples"] == [({}, 5.0)]

    def test_histogram_buckets_are_cumulative_and_agree_with_snapshot(
        self, sample_bus
    ):
        snapshot = sample_bus.snapshot()
        metrics = parse_prometheus(prometheus_text(snapshot))
        buckets, count, total = histogram_view(
            metrics, "repro_promtest_latency_s"
        )
        hist = snapshot["histograms"]["promtest.latency_s"]
        # cumulative reconstruction of the snapshot's per-bucket counts
        assert buckets["0.1"] == 1
        assert buckets["0.5"] == 3
        assert buckets["1.0"] == 4
        assert buckets["+Inf"] == hist["count"] == count == 5
        assert total == pytest.approx(hist["sum"])
        # monotone cumulative counts
        ordered = [buckets["0.1"], buckets["0.5"], buckets["1.0"],
                   buckets["+Inf"]]
        assert ordered == sorted(ordered)

    def test_phases_and_events(self, sample_bus):
        metrics = parse_prometheus(prometheus_text(sample_bus.snapshot()))
        samples = metrics["repro_phase_seconds_total"]["samples"]
        assert len(samples) == 1
        labels, value = samples[0]
        assert labels == {"phase": "measure"}
        assert value >= 0.0
        assert metrics["repro_events_total"]["samples"] == [({}, 0.0)]

    def test_invariants_section(self):
        snapshot = merge_snapshots({
            "counters": {}, "phases": {}, "events": 0,
            "histograms": {}, "gauges": {},
            "invariants": {"checks": 9, "violation_count": 2,
                           "violations": []},
        })
        metrics = parse_prometheus(prometheus_text(snapshot))
        assert metrics["repro_invariant_checks_total"]["samples"] == [({}, 9.0)]
        assert metrics["repro_invariant_violations_total"]["samples"] == [
            ({}, 2.0)
        ]

    def test_empty_snapshot_renders(self):
        metrics = parse_prometheus(prometheus_text(ProbeBus().snapshot()))
        assert metrics["repro_events_total"]["samples"] == [({}, 0.0)]

    def test_deterministic_output(self, sample_bus):
        snapshot = sample_bus.snapshot()
        assert prometheus_text(snapshot) == prometheus_text(snapshot)

    def test_name_sanitisation(self):
        bus = ProbeBus()
        bus.count("weird-metric.name/with:stuff")
        text = prometheus_text(bus.snapshot())
        assert "repro_weird_metric_name_with_stuff_total 1" in text
        parse_prometheus(text)

    def test_custom_prefix(self, sample_bus):
        text = prometheus_text(sample_bus.snapshot(), prefix="zr")
        metrics = parse_prometheus(text)
        assert "zr_cache_hits_total" in metrics

    def test_unset_gauges_skipped(self):
        bus = ProbeBus()
        snapshot = bus.snapshot()
        snapshot["gauges"]["never.set"] = {"last": None, "min": None,
                                           "max": None, "n": 0}
        metrics = parse_prometheus(prometheus_text(snapshot))
        assert "repro_never_set" not in metrics
