"""Tests for the Chrome-trace / Perfetto exporter."""

import json

import pytest

from repro.obs.export import (
    COUNTER_FIELDS,
    chrome_trace,
    convert_jsonl,
    main,
    read_jsonl,
    write_chrome_trace,
)


def _instants(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "i"]


class TestChromeTrace:
    def test_instant_events_on_simulated_clock(self):
        doc = chrome_trace([
            {"event": "refresh.ar", "seq": 0, "t": 0.032, "bank": 3,
             "kernel": "zero-refresh", "ar_set": 7},
        ])
        (event,) = _instants(doc)
        assert event["name"] == "refresh.ar"
        assert event["cat"] == "refresh"
        assert event["s"] == "t"
        # one trace microsecond per simulated microsecond
        assert event["ts"] == pytest.approx(32_000.0)
        assert event["tid"] == 3
        assert event["args"] == {"ar_set": 7}

    def test_process_per_kernel_with_metadata(self):
        doc = chrome_trace([
            {"event": "sim.window", "t": 0.0, "kernel": "zero-refresh"},
            {"event": "sim.window", "t": 0.0, "kernel": "raidr"},
            {"event": "sim.window", "t": 0.064, "kernel": "zero-refresh"},
        ])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["zero-refresh", "raidr"]
        assert [m["pid"] for m in meta] == [1, 2]
        assert [e["pid"] for e in _instants(doc)] == [1, 2, 1]

    def test_kernel_less_events_land_on_sim_process(self):
        doc = chrome_trace([{"event": "engine.job", "t": 0.5}])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "sim"
        (event,) = _instants(doc)
        assert event["tid"] == 0  # bank-less -> thread 0
        assert event["ts"] == pytest.approx(500_000.0)

    def test_counter_tracks_from_registered_fields(self):
        assert "sim.window" in COUNTER_FIELDS
        doc = chrome_trace([
            {"event": "sim.window", "t": 0.064, "kernel": "zero-refresh",
             "refreshed": 100, "skipped": 28},
        ])
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {c["name"]: c["args"] for c in counters} == {
            "sim.window.refreshed": {"refreshed": 100},
            "sim.window.skipped": {"skipped": 28},
        }
        assert all(c["tid"] == 0 for c in counters)

    def test_counter_fields_absent_from_record_are_skipped(self):
        doc = chrome_trace([
            {"event": "refresh.ar", "t": 0.0, "refreshed": 5},
            {"event": "refresh.ar", "t": 0.0},
        ])
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1

    def test_deterministic_for_identical_input(self):
        records = [
            {"event": "refresh.ar", "seq": i, "t": i * 0.001, "bank": i % 4,
             "kernel": "zero-refresh", "refreshed": i}
            for i in range(16)
        ]
        a = json.dumps(chrome_trace(records), sort_keys=True)
        b = json.dumps(chrome_trace(list(records)), sort_keys=True)
        assert a == b

    def test_document_envelope(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert doc["otherData"]["clock"] == "simulated"


class TestFiles:
    def _write_jsonl(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        src = tmp_path / "trace.jsonl"
        src.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [r["event"] for r in read_jsonl(src)] == ["a", "b"]

    def test_write_chrome_trace_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "trace.json"
        n = write_chrome_trace([{"event": "sim.window", "t": 0.0}], out)
        doc = json.loads(out.read_text())
        assert n == len(doc["traceEvents"]) == 2  # metadata + instant

    def test_convert_jsonl_round_trip(self, tmp_path):
        src = tmp_path / "trace.jsonl"
        self._write_jsonl(src, [
            {"event": "refresh.ar", "seq": 0, "t": 0.032, "bank": 1,
             "kernel": "zero-refresh", "refreshed": 3},
        ])
        out = tmp_path / "trace.chrome.json"
        n = convert_jsonl(src, out)
        doc = json.loads(out.read_text())
        # metadata + instant + one counter track
        assert n == 3
        assert [e["ph"] for e in doc["traceEvents"]] == ["M", "i", "C"]


class TestMain:
    def test_default_output_path(self, tmp_path, capsys):
        src = tmp_path / "run.jsonl"
        src.write_text('{"event": "sim.window", "t": 0.064}\n')
        assert main([str(src)]) == 0
        out = tmp_path / "run.jsonl.chrome.json"
        assert out.exists()
        assert "2 trace events" in capsys.readouterr().out

    def test_explicit_output_path(self, tmp_path):
        src = tmp_path / "run.jsonl"
        src.write_text('{"event": "sim.window", "t": 0.064}\n')
        out = tmp_path / "custom.json"
        assert main([str(src), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["otherData"]["clock"] == "simulated"
