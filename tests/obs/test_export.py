"""Tests for the Chrome-trace / Perfetto exporter."""

import json

import pytest

from repro.obs.export import (
    COUNTER_FIELDS,
    chrome_trace,
    convert_jsonl,
    main,
    read_jsonl,
    span_chrome_events,
    write_chrome_trace,
)
from repro.obs.spans import root_context, trace_id_for_run


def _instants(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "i"]


class TestChromeTrace:
    def test_instant_events_on_simulated_clock(self):
        doc = chrome_trace([
            {"event": "refresh.ar", "seq": 0, "t": 0.032, "bank": 3,
             "kernel": "zero-refresh", "ar_set": 7},
        ])
        (event,) = _instants(doc)
        assert event["name"] == "refresh.ar"
        assert event["cat"] == "refresh"
        assert event["s"] == "t"
        # one trace microsecond per simulated microsecond
        assert event["ts"] == pytest.approx(32_000.0)
        assert event["tid"] == 3
        assert event["args"] == {"ar_set": 7}

    def test_process_per_kernel_with_metadata(self):
        doc = chrome_trace([
            {"event": "sim.window", "t": 0.0, "kernel": "zero-refresh"},
            {"event": "sim.window", "t": 0.0, "kernel": "raidr"},
            {"event": "sim.window", "t": 0.064, "kernel": "zero-refresh"},
        ])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["zero-refresh", "raidr"]
        assert [m["pid"] for m in meta] == [1, 2]
        assert [e["pid"] for e in _instants(doc)] == [1, 2, 1]

    def test_kernel_less_events_land_on_sim_process(self):
        doc = chrome_trace([{"event": "engine.job", "t": 0.5}])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "sim"
        (event,) = _instants(doc)
        assert event["tid"] == 0  # bank-less -> thread 0
        assert event["ts"] == pytest.approx(500_000.0)

    def test_counter_tracks_from_registered_fields(self):
        assert "sim.window" in COUNTER_FIELDS
        doc = chrome_trace([
            {"event": "sim.window", "t": 0.064, "kernel": "zero-refresh",
             "refreshed": 100, "skipped": 28},
        ])
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {c["name"]: c["args"] for c in counters} == {
            "sim.window.refreshed": {"refreshed": 100},
            "sim.window.skipped": {"skipped": 28},
        }
        assert all(c["tid"] == 0 for c in counters)

    def test_counter_fields_absent_from_record_are_skipped(self):
        doc = chrome_trace([
            {"event": "refresh.ar", "t": 0.0, "refreshed": 5},
            {"event": "refresh.ar", "t": 0.0},
        ])
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1

    def test_deterministic_for_identical_input(self):
        records = [
            {"event": "refresh.ar", "seq": i, "t": i * 0.001, "bank": i % 4,
             "kernel": "zero-refresh", "refreshed": i}
            for i in range(16)
        ]
        a = json.dumps(chrome_trace(records), sort_keys=True)
        b = json.dumps(chrome_trace(list(records)), sort_keys=True)
        assert a == b

    def test_document_envelope(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert doc["otherData"]["clock"] == "simulated"


class TestFiles:
    def _write_jsonl(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        src = tmp_path / "trace.jsonl"
        src.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [r["event"] for r in read_jsonl(src)] == ["a", "b"]

    def test_write_chrome_trace_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "trace.json"
        n = write_chrome_trace([{"event": "sim.window", "t": 0.0}], out)
        doc = json.loads(out.read_text())
        assert n == len(doc["traceEvents"]) == 2  # metadata + instant

    def test_convert_jsonl_round_trip(self, tmp_path):
        src = tmp_path / "trace.jsonl"
        self._write_jsonl(src, [
            {"event": "refresh.ar", "seq": 0, "t": 0.032, "bank": 1,
             "kernel": "zero-refresh", "refreshed": 3},
        ])
        out = tmp_path / "trace.chrome.json"
        n = convert_jsonl(src, out)
        doc = json.loads(out.read_text())
        # metadata + instant + one counter track
        assert n == 3
        assert [e["ph"] for e in doc["traceEvents"]] == ["M", "i", "C"]


def _span_records():
    tid = trace_id_for_run("r")
    root = root_context(tid)
    job1, job2 = root.child("job", "d1"), root.child("job", "d2")
    att = job1.child("attempt", "1")

    def rec(ctx, t0, dur_s, **attrs):
        return dict(attrs, trace_id=ctx.trace_id, span_id=ctx.span_id,
                    parent_id=ctx.parent_id, name=ctx.name,
                    q=ctx.qualifier, t0=t0, dur_s=dur_s)

    return [rec(root, 100.0, 5.0, status="ok"),
            rec(job1, 101.0, 3.0), rec(att, 101.0, 3.0),
            rec(job2, 101.0, 2.0)]


class TestSpanEvents:
    def test_complete_slices_rebased_to_zero(self):
        events = span_chrome_events(_span_records())
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 4
        run = next(e for e in slices if e["name"] == "run")
        assert run["ts"] == 0.0  # rebased: earliest span is t=0
        assert run["dur"] == 5_000_000.0

    def test_job_subtrees_get_distinct_lanes(self):
        events = span_chrome_events(_span_records())
        lanes = {e["name"]: e["tid"] for e in events if e["ph"] == "X"}
        assert lanes["run"] == 0
        assert lanes["job d1"] != lanes["job d2"]
        # the attempt inherits its job's lane
        assert lanes["attempt 1"] == lanes["job d1"]

    def test_trace_gets_its_own_process_track(self):
        events = span_chrome_events(_span_records())
        (meta,) = [e for e in events if e["ph"] == "M"]
        tid = trace_id_for_run("r")
        assert meta["args"]["name"] == f"spans:{tid}"
        assert all(e["pid"] == meta["pid"]
                   for e in events if e["ph"] == "X")

    def test_merged_into_chrome_trace_without_touching_instants(self):
        probe = [{"event": "sim.window", "t": 0.0, "refreshed": 1}]
        plain = chrome_trace(probe)
        merged = chrome_trace(probe, span_records=_span_records())
        instants = [e for e in merged["traceEvents"] if e["ph"] == "i"]
        assert instants == [e for e in plain["traceEvents"]
                            if e["ph"] == "i"]
        assert any(e["ph"] == "X" for e in merged["traceEvents"])

    def test_convert_jsonl_autodetects_span_store(self, tmp_path):
        src = tmp_path / "spans.jsonl"
        src.write_text("".join(json.dumps(r) + "\n"
                               for r in _span_records()))
        out = tmp_path / "spans.chrome.json"
        n = convert_jsonl(src, out)
        doc = json.loads(out.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 4
        assert n == len(doc["traceEvents"])

    def test_empty_span_records_is_a_noop(self):
        assert span_chrome_events([]) == []
        doc = chrome_trace([], span_records=[])
        assert doc["traceEvents"] == []


class TestMain:
    def test_default_output_path(self, tmp_path, capsys):
        src = tmp_path / "run.jsonl"
        src.write_text('{"event": "sim.window", "t": 0.064}\n')
        assert main([str(src)]) == 0
        out = tmp_path / "run.jsonl.chrome.json"
        assert out.exists()
        assert "2 trace events" in capsys.readouterr().out

    def test_explicit_output_path(self, tmp_path):
        src = tmp_path / "run.jsonl"
        src.write_text('{"event": "sim.window", "t": 0.064}\n')
        out = tmp_path / "custom.json"
        assert main([str(src), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["otherData"]["clock"] == "simulated"
