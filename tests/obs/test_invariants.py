"""Tests for the invariant watchdog layer."""

import pytest

from repro.obs import ProbeBus, use_probes
from repro.obs.invariants import (
    NULL_WATCHDOG,
    InvariantWatchdog,
    get_watchdog,
    use_watchdog,
    watch,
)


class TestWatchdog:
    def test_check_records_and_returns(self):
        wd = InvariantWatchdog()
        assert wd.check("x", True) is True
        assert wd.check("x", False, bank=2) is False
        assert wd.checks_run == 2
        assert wd.violation_count == 1
        assert wd.violations == [{"bank": 2, "check": "x"}]

    def test_violation_recording_is_capped(self):
        wd = InvariantWatchdog(max_recorded=3)
        for i in range(10):
            wd.check("x", False, i=i)
        assert wd.violation_count == 10
        assert len(wd.violations) == 3

    def test_violations_count_on_ambient_bus(self):
        bus = ProbeBus()
        wd = InvariantWatchdog()
        with use_probes(bus):
            wd.check("refresh.skip_safety", False, bank=0)
            wd.check("refresh.skip_safety", True)
        assert bus.counters["invariant.violations"] == 1
        assert bus.counters["invariant.refresh.skip_safety"] == 1

    def test_never_raises(self):
        # watchdogs observe; a violation must not alter control flow
        wd = InvariantWatchdog()
        assert wd.check("anything", False) is False

    def test_snapshot_and_report(self):
        wd = InvariantWatchdog()
        wd.check("a", True)
        wd.check("b", False, bank=1, t=0.032)
        snap = wd.snapshot()
        assert snap == {"checks": 2, "violation_count": 1,
                        "violations": [{"bank": 1, "t": 0.032, "check": "b"}]}
        report = wd.report()
        assert "2 checks" in report and "1 violations" in report
        assert "b: bank=1" in report


class TestNullWatchdog:
    def test_disabled_and_inert(self):
        assert NULL_WATCHDOG.enabled is False
        assert NULL_WATCHDOG.check("x", False) is True
        assert NULL_WATCHDOG.snapshot() == {"checks": 0,
                                            "violation_count": 0,
                                            "violations": []}
        assert NULL_WATCHDOG.report() == "invariants: disabled"


class TestAmbientWatchdog:
    def test_default_is_null(self):
        assert get_watchdog() is NULL_WATCHDOG

    def test_use_watchdog_installs_and_restores(self):
        wd = InvariantWatchdog()
        with use_watchdog(wd):
            assert get_watchdog() is wd
        assert get_watchdog() is NULL_WATCHDOG

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_watchdog(InvariantWatchdog()):
                raise RuntimeError
        assert get_watchdog() is NULL_WATCHDOG

    def test_watch_builds_and_installs(self):
        with watch(max_recorded=5) as wd:
            assert get_watchdog() is wd
            assert wd.max_recorded == 5
            assert wd.enabled
        assert get_watchdog() is NULL_WATCHDOG


class TestComponentsPickUpWatchdog:
    def test_refresh_engine_binds_ambient_watchdog(self):
        from repro.core.config import SystemConfig
        from repro.core.zero_refresh import ZeroRefreshSystem

        config = SystemConfig.scaled(total_bytes=4 << 20)
        with watch() as wd:
            system = ZeroRefreshSystem(config)
        assert system.engine.watchdog is wd
        assert system.controller.watchdog is wd
        # outside the block, new systems get the disabled default
        assert ZeroRefreshSystem(config).engine.watchdog is NULL_WATCHDOG

    def test_watched_run_checks_and_passes(self):
        from repro.core.config import SystemConfig
        from repro.core.zero_refresh import ZeroRefreshSystem
        from repro.workloads.benchmarks import benchmark_profile

        config = SystemConfig.scaled(total_bytes=4 << 20)
        with watch() as wd:
            system = ZeroRefreshSystem(config)
            system.populate(benchmark_profile("mcf"), allocated_fraction=0.5)
            system.run_windows(2)
        assert wd.checks_run > 0
        assert wd.violation_count == 0, wd.report()

    def test_watchdog_detects_a_planted_skip_violation(self):
        # corrupt the status table behind the engine's back: mark a
        # charged group discharged; the clean path must flag it
        from repro.core.config import SystemConfig
        from repro.core.zero_refresh import ZeroRefreshSystem
        from repro.workloads.benchmarks import benchmark_profile

        config = SystemConfig.scaled(total_bytes=4 << 20)
        with watch() as wd:
            system = ZeroRefreshSystem(config)
            system.populate(benchmark_profile("mcf"), allocated_fraction=1.0)
            system.run_windows(1)  # derive tables
            engine = system.engine
            truth = engine.derive_group_status(0, 0)
            if truth.all():
                pytest.skip("bank 0 set 0 fully discharged; nothing to plant")
            engine.status_table.write_vector(0, 0, ~truth)
            # force the clean path: traffic may have raised the access
            # bit, and a dirty set would re-derive (and so repair) the
            # planted vector before anyone trusts it
            engine.access_bits.test_and_clear(0, 0)
            set_rows = engine.geometry.rows_of_ar_set(0)
            engine.device.banks[0].dirty[set_rows] = False
            engine.process_ar(0, 0, time_s=1.0)
        assert wd.violation_count > 0
        assert any(v["check"] == "refresh.skip_safety"
                   for v in wd.violations)
