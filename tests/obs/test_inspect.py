"""Tests for :mod:`repro.obs.inspect`: the run-inspector document."""

import json

import pytest

import repro.api as api
from repro.obs.inspect import (
    UnknownRunError,
    inspect_run,
    main,
    render_report,
)
from repro.obs.spans import append_spans, root_context, trace_id_for_run


def synthetic_store(tmp_path, run_id="synth-run"):
    """A hand-built span store: one run, two jobs, one retried."""
    tid = trace_id_for_run(run_id)
    root = root_context(tid)
    job1, job2 = root.child("job", "d1"), root.child("job", "d2")
    att1a = job1.child("attempt", "1")
    att1b = job1.child("attempt", "2")
    att2 = job2.child("attempt", "1")
    measure = att1b.child("measure", "0")

    def rec(ctx, t0, dur_s, **attrs):
        return dict(attrs, trace_id=ctx.trace_id, span_id=ctx.span_id,
                    parent_id=ctx.parent_id, name=ctx.name,
                    q=ctx.qualifier, t0=t0, dur_s=dur_s)

    records = [
        rec(root, 0.0, 10.0, status="ok", experiment_id="figX",
            run_id=run_id, planned=2, cache_hits=1, cache_misses=2),
        rec(job1, 1.0, 8.0, digest="d1", status="done", attempts=2),
        rec(att1a, 1.0, 2.0, error="SimCrash: injected"),
        rec(att1b, 3.5, 5.5),
        rec(measure, 4.0, 3.0, kernel=""),
        rec(job2, 1.0, 3.0, digest="d2", status="done", attempts=1),
        rec(att2, 1.0, 3.0),
    ]
    append_spans(tmp_path, run_id, records)
    return run_id


class TestInspectSynthetic:
    def test_unknown_run_raises(self, tmp_path):
        with pytest.raises(UnknownRunError):
            inspect_run(tmp_path, "never-ran")

    def test_document_joins_spans(self, tmp_path):
        run_id = synthetic_store(tmp_path)
        doc = inspect_run(tmp_path, run_id)
        assert doc["state"] == "finished"
        assert doc["trace_id"] == trace_id_for_run(run_id)
        assert doc["experiment_id"] == "figX"
        assert doc["wall_s"] == 10.0
        assert doc["jobs"]["planned"] == 2
        assert doc["cache"] == {"hits": 1, "misses": 2,
                                "hit_ratio": round(1 / 3, 4)}

    def test_retry_surfaces_in_timeline_and_retries(self, tmp_path):
        doc = inspect_run(tmp_path, synthetic_store(tmp_path))
        (retry,) = doc["retries"]
        assert retry["error"] == "SimCrash: injected"
        assert retry["attempt"] == "1"
        errors = [ev for ev in doc["timeline"] if "error" in ev]
        assert len(errors) == 1 and errors[0]["name"] == "attempt"

    def test_phases_slowest_and_critical_path(self, tmp_path):
        doc = inspect_run(tmp_path, synthetic_store(tmp_path))
        assert doc["phases"]["measure"]["count"] == 1
        assert doc["slowest_jobs"][0]["digest"] == "d1"
        assert doc["slowest_jobs"][0]["attempts"] == 2
        chain = [n["name"] for n in doc["critical_path"]]
        assert chain == ["run", "job", "attempt", "measure"]

    def test_render_report_mentions_the_essentials(self, tmp_path):
        run_id = synthetic_store(tmp_path)
        text = render_report(inspect_run(tmp_path, run_id))
        assert run_id in text
        assert "state: finished" in text
        assert "SimCrash" in text
        assert "critical path: run > job[d1] > attempt[2] > measure[0]" \
            in text

    def test_interrupted_run_has_no_root_span(self, tmp_path):
        run_id = synthetic_store(tmp_path)
        from repro.obs.spans import read_spans, span_path

        path = span_path(tmp_path, run_id)
        records = [r for r in read_spans(path) if r["name"] != "run"]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        doc = inspect_run(tmp_path, run_id)
        assert doc["state"] == "interrupted"
        assert doc["wall_s"] is None


class TestInspectRealRun:
    def test_engine_run_is_inspectable(self, tmp_path):
        # ext-vrt: cheapest experiment that simulates real windows, so
        # the cached metrics join has sim.* counters to surface
        runner = api.make_runner(cache_dir=tmp_path)
        api.run(api.RunRequest("ext-vrt", settings=api.quick_settings(),
                               cache_dir=tmp_path), runner=runner)
        run_id = runner.last_run_id
        doc = api.inspect_run(run_id, cache_dir=tmp_path)
        assert doc["run_id"] == run_id
        assert doc["state"] == "finished"
        assert doc["jobs"]["done"] >= 1
        assert doc["counters"].get("sim.windows", 0) >= 1

    def test_main_exit_codes(self, tmp_path, capsys):
        run_id = synthetic_store(tmp_path)
        assert main([run_id, "--cache-dir", str(tmp_path)]) == 0
        assert run_id in capsys.readouterr().out
        assert main(["bogus", "--cache-dir", str(tmp_path)]) == 1
        assert "unknown run" in capsys.readouterr().err

    def test_main_json_is_valid(self, tmp_path, capsys):
        run_id = synthetic_store(tmp_path)
        assert main([run_id, "--cache-dir", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == run_id
