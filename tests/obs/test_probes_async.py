"""ProbeBus fork/absorb under concurrent asyncio tasks.

The serving daemon forks child buses per experiment job while the event
loop interleaves many tasks; these tests pin down that interleaved
children never contaminate each other and that absorbing them back
yields exactly the sum of their contributions.
"""

import asyncio

import pytest

from repro.obs import ProbeBus
from repro.obs.metrics import register_histogram
from repro.obs.probes import ListTraceSink


@pytest.fixture(autouse=True)
def latency_bounds():
    register_histogram("async.latency_s", (0.1, 1.0))


async def job(parent, index, rounds):
    """One task's worth of scoped capture, yielding between updates."""
    child = parent.fork()
    for round_number in range(rounds):
        child.count("async.iterations")
        child.count(f"async.task_{index}")
        child.observe("async.latency_s", 0.05 * (index + 1))
        child.gauge("async.last_round", round_number)
        child.event("async.tick", task=index, round=round_number)
        with child.phase(f"task_{index}"):
            await asyncio.sleep(0)
    return child


class TestForkAbsorbConcurrent:
    def test_interleaved_children_stay_isolated(self):
        n_tasks, rounds = 8, 25
        parent = ProbeBus()

        async def scenario():
            return await asyncio.gather(
                *(job(parent, i, rounds) for i in range(n_tasks))
            )

        children = asyncio.run(scenario())
        for index, child in enumerate(children):
            snap = child.snapshot()
            # each child saw only its own updates, despite interleaving
            assert snap["counters"]["async.iterations"] == rounds
            assert snap["counters"][f"async.task_{index}"] == rounds
            assert snap["histograms"]["async.latency_s"]["count"] == rounds
            assert snap["gauges"]["async.last_round"]["last"] == rounds - 1
            other = [k for k in snap["counters"]
                     if k.startswith("async.task_")
                     and k != f"async.task_{index}"]
            assert other == []
            assert list(snap["phases"]) == [f"task_{index}"]
        # the parent accumulated nothing until absorb
        assert parent.counters == {}

    def test_absorb_sums_to_exact_totals(self):
        n_tasks, rounds = 6, 10
        parent = ProbeBus()

        async def scenario():
            children = await asyncio.gather(
                *(job(parent, i, rounds) for i in range(n_tasks))
            )
            for child in children:
                parent.absorb(child)

        asyncio.run(scenario())
        snap = parent.snapshot()
        assert snap["counters"]["async.iterations"] == n_tasks * rounds
        for index in range(n_tasks):
            assert snap["counters"][f"async.task_{index}"] == rounds
        hist = snap["histograms"]["async.latency_s"]
        assert hist["count"] == n_tasks * rounds
        assert hist["sum"] == pytest.approx(
            sum(0.05 * (i + 1) * rounds for i in range(n_tasks))
        )
        # every task's phase wall time survived the merge
        assert set(snap["phases"]) == {f"task_{i}" for i in range(n_tasks)}

    def test_events_flow_to_parent_sink_while_tasks_interleave(self):
        sink = ListTraceSink()
        parent = ProbeBus(trace=sink)
        n_tasks, rounds = 5, 12

        async def scenario():
            children = await asyncio.gather(
                *(job(parent, i, rounds) for i in range(n_tasks))
            )
            for child in children:
                parent.absorb(child)

        asyncio.run(scenario())
        ticks = [r for r in sink.records if r["event"] == "async.tick"]
        assert len(ticks) == n_tasks * rounds
        # sequence numbers come from the parent: unique and gap-free
        seqs = sorted(r["seq"] for r in sink.records)
        assert seqs == list(range(len(sink.records)))
        # every task delivered all of its ticks, in its own order
        for index in range(n_tasks):
            mine = [r["round"] for r in ticks if r["task"] == index]
            assert mine == list(range(rounds))

    def test_concurrent_forks_of_shared_parent_histogram_bounds(self):
        parent = ProbeBus()

        async def observe_task(value):
            child = parent.fork()
            child.observe("async.latency_s", value)
            await asyncio.sleep(0)
            return child

        async def scenario():
            children = await asyncio.gather(
                observe_task(0.05), observe_task(0.5), observe_task(5.0)
            )
            for child in children:
                parent.absorb(child)

        asyncio.run(scenario())
        hist = parent.snapshot()["histograms"]["async.latency_s"]
        # registered bounds applied in every child: 0.05 | 0.5 | overflow
        assert hist["bounds"] == [0.1, 1.0]
        assert hist["counts"] == [1, 1, 1]
