"""Smoke tests: every example script runs to completion.

Examples are the user-facing contract; these tests execute them as
subprocesses (smallest practical arguments) so a refactor cannot break
them silently.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_custom_codec(self):
        proc = run_example("custom_codec.py")
        assert proc.returncode == 0, proc.stderr
        assert "round trip exact" in proc.stdout

    def test_analyze_image(self):
        proc = run_example("analyze_image.py")
        assert proc.returncode == 0, proc.stderr
        assert "measured refresh reduction" in proc.stdout

    @pytest.mark.slow
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "normalized refresh ops" in proc.stdout
        assert "OK" in proc.stdout

    @pytest.mark.slow
    def test_trace_driven(self):
        proc = run_example("trace_driven.py")
        assert proc.returncode == 0, proc.stderr
        assert "integrity: OK" in proc.stdout

    @pytest.mark.slow
    def test_benchmark_sweep_tiny(self):
        proc = run_example("benchmark_sweep.py", "--memory-mb", "4",
                           "--windows", "1", timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "suite average reduction" in proc.stdout

    def test_paper_figures(self):
        proc = run_example("paper_figures.py", "sram", "tab01", "--quick")
        assert proc.returncode == 0, proc.stderr
        assert "[sram]" in proc.stdout
        # sram is one design-point job, tab01 one job per trace
        assert "engine: 4 jobs" in proc.stdout

    @pytest.mark.slow
    def test_datacenter_provisioning(self):
        proc = run_example("datacenter_provisioning.py", timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "integrity: OK" in proc.stdout
