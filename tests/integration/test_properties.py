"""Cross-module property-based tests (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.memctrl import MemoryController
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


def make_controller(row_bytes=4096, error_rate=0.0, seed=0):
    geom = DramGeometry(rows_per_bank=(4 << 20) // (8 * row_bytes),
                        row_bytes=row_bytes, rows_per_ar=32,
                        cell_interleave=32)
    layout = CellTypeLayout(interleave=32)
    device = DramDevice(geom, layout)
    predictor = CellTypePredictor.from_layout(
        layout, geom.rows_per_bank, error_rate, np.random.default_rng(seed)
    )
    return MemoryController(device, ValueTransformCodec(predictor))


class TestMemorySemantics:
    """The fundamental contract: DRAM behaves like memory."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           n=st.integers(min_value=1, max_value=40))
    def test_last_write_wins(self, seed, n):
        ctrl = make_controller()
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, ctrl.geometry.total_lines, size=n)
        lines = rng.integers(0, 2**64, size=(n, 8), dtype=np.uint64)
        expected = {}
        for addr, line in zip(addrs, lines):
            ctrl.write_line(int(addr), line)
            expected[int(addr)] = line
        for addr, line in expected.items():
            np.testing.assert_array_equal(ctrl.read_line(addr), line)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           error_rate=st.floats(min_value=0.0, max_value=1.0))
    def test_memory_semantics_independent_of_celltype_accuracy(
            self, seed, error_rate):
        ctrl = make_controller(error_rate=error_rate, seed=seed)
        rng = np.random.default_rng(seed)
        addrs = rng.choice(ctrl.geometry.total_lines, size=16, replace=False)
        lines = rng.integers(0, 2**64, size=(16, 8), dtype=np.uint64)
        ctrl.write_lines(addrs, lines)
        for addr, line in zip(addrs, lines):
            np.testing.assert_array_equal(ctrl.read_line(int(addr)), line)

    @settings(max_examples=10, deadline=None)
    @given(row_bytes=st.sampled_from([2048, 4096, 8192]),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_page_semantics_across_row_sizes(self, row_bytes, seed):
        ctrl = make_controller(row_bytes=row_bytes)
        rng = np.random.default_rng(seed)
        pages = rng.choice(ctrl.mapper.total_pages, size=4, replace=False)
        contents = rng.integers(0, 2**64, size=(4, 64, 8), dtype=np.uint64)
        for page, content in zip(pages, contents):
            ctrl.write_page(int(page), content)
        for page, content in zip(pages, contents):
            np.testing.assert_array_equal(ctrl.read_page(int(page)), content)


class TestGeometryProperties:
    @settings(max_examples=50)
    @given(addr=st.integers(min_value=0, max_value=(4 << 20) // 64 - 1))
    def test_line_decompose_compose_identity(self, addr):
        geom = DramGeometry(rows_per_bank=128, rows_per_ar=32,
                            cell_interleave=32)
        bank, row, lir = geom.decompose_line(addr)
        assert geom.compose_line(bank, row, lir) == addr

    @settings(max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_distinct_addresses_distinct_locations(self, seed):
        geom = DramGeometry(rows_per_bank=128, rows_per_ar=32,
                            cell_interleave=32)
        rng = np.random.default_rng(seed)
        addrs = rng.choice(geom.total_lines, size=64, replace=False)
        locations = set(zip(*map(np.ravel, geom.decompose_line(addrs))))
        assert len(locations) == 64
