"""Cross-module integration tests.

These exercise whole paths through the system: program accesses ->
cache hierarchy -> memory controller -> value transformation -> DRAM ->
refresh engine -> energy/IPC models, asserting properties no single
module can guarantee alone.
"""

import numpy as np
import pytest

from repro.cache.caches import CacheHierarchy
from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.dram.retention import RetentionTracker
from repro.workloads.benchmarks import benchmark_profile
from repro.workloads.synthetic import generate_lines


def make_system(seed=0, **overrides):
    config = SystemConfig.scaled(total_bytes=8 << 20, rows_per_ar=32,
                                 seed=seed, **overrides)
    return ZeroRefreshSystem(config)


class TestCacheToDramPath:
    def test_llc_evictions_drive_transformed_writes(self):
        """Traffic filtered through the cache hierarchy lands in DRAM
        transformed and reads back exactly."""
        system = make_system()
        system.populate(benchmark_profile("gcc"), allocated_fraction=1.0,
                        accesses_per_window=0)
        hierarchy = CacheHierarchy(num_cores=1, l1_bytes=1024, l1_ways=2,
                                   llc_bytes_per_core=4096, llc_ways=4)
        rng = np.random.default_rng(1)
        store = {}
        for _ in range(2000):
            addr = int(rng.integers(0, 4096))
            events = hierarchy.access(0, addr, is_write=True)
            for event in events:
                if event.is_write:
                    line = generate_lines("smallint16", 1, rng)[0]
                    store[event.line_addr] = line
                    system.controller.write_line(event.line_addr, line)
        for event in hierarchy.drain():
            if event.is_write and event.line_addr not in store:
                store[event.line_addr] = np.zeros(8, dtype=np.uint64)
        assert store, "no writebacks reached memory"
        for addr, line in list(store.items())[:50]:
            np.testing.assert_array_equal(system.controller.read_line(addr),
                                          line)


class TestFullSystemProperties:
    def test_reduction_tracks_analytic_model(self):
        """Measured reduction within 35% relative of the mixture model
        (write traffic and block effects account for the gap)."""
        for name in ("gemsFDTD", "mcf", "omnetpp"):
            system = make_system(seed=2)
            profile = benchmark_profile(name)
            system.populate(profile, allocated_fraction=1.0)
            result = system.run_windows(2)
            analytic = profile.expected_reduction()
            assert result.refresh_reduction == pytest.approx(
                analytic, rel=0.40, abs=0.03
            )

    def test_scenario_additivity(self):
        """Idle pages contribute their full share: reduction(frac) ~
        frac * reduction(1.0) + (1 - frac)."""
        profile = benchmark_profile("milc")
        base_sys = make_system(seed=3)
        base_sys.populate(profile, allocated_fraction=1.0,
                          accesses_per_window=0)
        r_full = base_sys.run_windows(2).refresh_reduction
        part_sys = make_system(seed=3)
        part_sys.populate(profile, allocated_fraction=0.5,
                          accesses_per_window=0)
        r_half = part_sys.run_windows(2).refresh_reduction
        assert r_half == pytest.approx(0.5 * r_full + 0.5, abs=0.05)

    def test_no_data_loss_across_many_windows(self):
        system = make_system(seed=4)
        system.populate(benchmark_profile("sphinx3"), allocated_fraction=0.7)
        tracker = RetentionTracker(system.device, system.config.timing.tret_s)
        for _ in range(6):
            system.run_windows(1, warmup_windows=0)
            assert not tracker.decay(system.time_s).data_loss

    def test_refresh_energy_ipc_consistency(self):
        """More skipping => less energy and more IPC, monotonically."""
        results = []
        for fraction in (1.0, 0.28):
            system = make_system(seed=5)
            system.populate(benchmark_profile("lbm"),
                            allocated_fraction=fraction)
            results.append(system.run_windows(2))
        more_idle, less_idle = results[1], results[0]
        assert more_idle.normalized_refresh < less_idle.normalized_refresh
        assert more_idle.normalized_energy < less_idle.normalized_energy
        assert more_idle.ipc.normalized_ipc > less_idle.ipc.normalized_ipc

    def test_os_free_then_reuse_cycle(self):
        """Free pages become skippable; reallocation revives them."""
        system = make_system(seed=6)
        system.populate(benchmark_profile("gcc"), allocated_fraction=0.8,
                        accesses_per_window=0)
        system.run_windows(1)
        before = system.run_windows(1).refresh_reduction
        # Free a quarter of the allocated pages (OS cleanses them).
        pages = system.allocator.allocated_pages[: system.allocator.total_pages // 4]
        system.allocator.free(pages, system.time_s)
        system.run_windows(1)  # re-derivation window
        after = system.run_windows(1).refresh_reduction
        assert after > before

    def test_conventional_vs_zero_refresh_same_content(self):
        """Both modes store identical data; only refresh work differs."""
        zr = make_system(seed=7)
        conv = make_system(seed=7, refresh_mode="conventional")
        profile = benchmark_profile("hmmer")
        zr.populate(profile, allocated_fraction=1.0, accesses_per_window=0)
        conv.populate(profile, allocated_fraction=1.0, accesses_per_window=0)
        r_zr = zr.run_windows(2)
        r_conv = conv.run_windows(2)
        assert r_conv.normalized_refresh == 1.0
        assert r_zr.normalized_refresh < 1.0
        page = int(zr.allocator.allocated_pages[0])
        np.testing.assert_array_equal(zr.read_page(page),
                                      conv.read_page(page))
