"""Span-tree propagation properties across fan-out, faults and resume.

The tentpole guarantee of :mod:`repro.obs.spans`: the reconstructed
span tree — parentage and phase names, never timings — is a pure
function of the *work*, not of the execution strategy.  ``--jobs 4``
must yield the same tree as ``--jobs 1``; a SIGKILLed run that resumes
must fold (via deterministic span ids) into the same tree as a run
that was never disturbed.
"""

import signal
import subprocess
import sys
from pathlib import Path

from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import RunRequest, execute, runner_for
from repro.experiments.runner import ExperimentSettings
from repro.obs.spans import (
    dedupe_spans,
    read_spans,
    span_path,
    span_tree,
    tree_signature,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

MICRO = ExperimentSettings.quick(
    memory_bytes=8 << 20, windows=1, benchmarks=("mcf", "gcc")
)

ABORT_SCRIPT = """\
import sys
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import RunRequest, execute
from repro.experiments.runner import ExperimentSettings

settings = ExperimentSettings.quick(
    memory_bytes=8 << 20, windows=1, benchmarks=("mcf", "gcc"))
execute(RunRequest(
    "fig17", settings=settings, jobs=1, cache_dir=sys.argv[1],
    run_id="span-abort", span_flush_every=1,
    faults=FaultPlan((FaultSpec(job_index=0, kind="abort-run"),)),
))
raise SystemExit("unreachable: the abort-run fault must SIGKILL us")
"""


def run_fig17(cache_dir, **request_overrides):
    request = RunRequest(
        "fig17", settings=MICRO, cache_dir=str(cache_dir),
        **request_overrides,
    )
    runner = runner_for(request)
    return execute(request, runner=runner), runner


def stored_spans(cache_dir, run_id):
    return dedupe_spans(read_spans(span_path(Path(cache_dir), run_id)))


class TestFanOutTreeIdentity:
    def test_jobs4_tree_matches_jobs1_with_injected_crash(self, tmp_path):
        """The acceptance criterion: one injected crash on a four-way
        pool — the reconstructed tree (parentage + names) matches the
        serial run's, and the retry is visible in it."""
        faults = FaultPlan((FaultSpec(job_index=1, kind="crash", times=1),))
        _, serial = run_fig17(tmp_path / "serial", jobs=1,
                              faults=faults)
        _, pooled = run_fig17(tmp_path / "pooled", jobs=4,
                              faults=faults)

        serial_spans = stored_spans(tmp_path / "serial",
                                    serial.last_run_id)
        pooled_spans = stored_spans(tmp_path / "pooled",
                                    pooled.last_run_id)
        assert serial_spans and pooled_spans
        assert tree_signature(serial_spans) == tree_signature(pooled_spans)

        # one failed attempt span (the injected crash) in both trees,
        # with the same deterministic span id
        def failed(spans):
            return [s for s in spans
                    if s["name"] == "attempt" and "error" in s]

        (serial_fail,), (pooled_fail,) = (failed(serial_spans),
                                          failed(pooled_spans))
        assert serial_fail["span_id"] == pooled_fail["span_id"]
        assert serial_fail["q"] == "1"
        # the retried job carries both attempts under one job span
        (tree,) = span_tree(pooled_spans)
        retried = [n for n in tree["children"] if n["name"] == "job"
                   and len([c for c in n["children"]
                            if c["name"] == "attempt"]) == 2]
        assert len(retried) == 1

    def test_kernel_phases_attach_under_attempts(self, tmp_path):
        _, runner = run_fig17(tmp_path / "cache", jobs=2)
        spans = stored_spans(tmp_path / "cache", runner.last_run_id)
        (tree,) = span_tree(spans)
        attempts = [c for job in tree["children"] if job["name"] == "job"
                    for c in job["children"] if c["name"] == "attempt"]
        assert attempts
        for attempt in attempts:
            names = {c["name"] for c in attempt["children"]}
            assert "measure" in names

    def test_warm_rerun_emits_no_job_spans(self, tmp_path):
        _, first = run_fig17(tmp_path / "cache", jobs=2)
        _, second = run_fig17(tmp_path / "cache", jobs=2)
        assert second.stats.cache_hits >= 1
        run_spans = [r for r in second.span_records if r["name"] == "run"]
        assert run_spans and run_spans[0]["cache_hits"] >= 1
        assert not any(r["name"] == "job" for r in second.span_records)


class TestKillResumeTreeIdentity:
    def test_resumed_tree_matches_undisturbed_run(self, tmp_path):
        """SIGKILL mid-plan, then resume: dedup-by-span-id folds the
        two partial traces into exactly the undisturbed run's tree."""
        cache_dir = tmp_path / "killed-cache"
        proc = subprocess.run(
            [sys.executable, "-c", ABORT_SCRIPT, str(cache_dir)],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # span_flush_every=1 left the completed job's spans on disk
        # even though the process never reached a clean close
        killed = stored_spans(cache_dir, "span-abort")
        assert any(s["name"] == "job" for s in killed)
        assert not any(s["name"] == "run" for s in killed)  # no root yet

        _, resumed = run_fig17(cache_dir, jobs=1, resume="span-abort")
        assert resumed.stats.journal_replays == 1

        _, pristine = run_fig17(tmp_path / "pristine-cache", jobs=1,
                                run_id="span-abort")
        resumed_spans = stored_spans(cache_dir, "span-abort")
        pristine_spans = stored_spans(tmp_path / "pristine-cache",
                                      "span-abort")
        assert (tree_signature(resumed_spans)
                == tree_signature(pristine_spans))
        # replayed jobs emit no fresh job span; the one from before the
        # kill is still in the store, deduped under the same id
        assert (sorted(s["span_id"] for s in resumed_spans)
                == sorted(s["span_id"] for s in pristine_spans))
