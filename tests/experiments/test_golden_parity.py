"""Golden parity: every migrated experiment still produces the exact
bytes the hand-written per-figure modules produced.

``golden_micro.json`` was captured from the pre-scenario-layer code at
micro settings (4 MB, 1 window, 4 benchmarks).  Each test runs the
spec-driven replacement at the same settings and asserts the rendered
JSON is byte-identical — title, headers, row order, paper-reference
key order, float formatting, everything.  A shared module-scope runner
keeps the wall time down: the figures share many simulation points, so
later experiments replay earlier ones from the cache.
"""

import json
from pathlib import Path

import pytest

import repro.api as api
from repro.experiments import REGISTRY
from repro.experiments.cache import ResultCache

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_micro.json").read_text())

MICRO = api.default_settings(
    memory_bytes=4 << 20, windows=1,
    benchmarks=("gemsFDTD", "mcf", "bzip2", "omnetpp"),
    rows_per_ar=32, seed=3,
)


@pytest.fixture(scope="module")
def shared_runner(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("golden-cache"))
    return api.make_runner(jobs=2, cache=cache)


def test_golden_fixture_covers_the_whole_registry():
    assert set(GOLDEN) == set(REGISTRY)


@pytest.mark.parametrize("experiment_id", list(GOLDEN))
def test_output_is_byte_identical_to_seed(experiment_id, shared_runner):
    result = api.run(api.RunRequest(experiment_id, settings=MICRO),
                     runner=shared_runner)
    assert result.to_json(indent=2) == GOLDEN[experiment_id]
