"""Tests for the python -m repro.experiments command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_runs_lightweight_experiment(self, capsys):
        assert main(["sram", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[sram]" in out
        assert "337.14" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["nonesuch"])

    def test_scale_flags(self, capsys):
        assert main(["fig04", "--memory-mb", "8", "--windows", "1"]) == 0
        assert "refresh share" in capsys.readouterr().out

    def test_tab01(self, capsys):
        assert main(["tab01", "--quick", "--seed", "3"]) == 0
        assert "bitbrains" in capsys.readouterr().out

    def test_quick_help_matches_quick_settings(self, capsys):
        from repro.experiments import ExperimentSettings

        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        mb = ExperimentSettings.quick().memory_bytes >> 20
        assert f"{mb} MB" in help_text


class TestEngineFlags:
    def test_json_output(self, capsys):
        import json

        assert main(["sram", "--quick", "--json", "--no-cache"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["experiment_id"] == "sram"
        assert parsed["headers"][0] == "design"

    def test_json_output_carries_run_and_trace_ids(self, tmp_path, capsys):
        import json

        args = ["sram", "--quick", "--json",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["run_id"] and doc["run_id"] in captured.err
        assert len(doc["trace_id"]) == 16
        assert doc["trace_id"] in captured.err
        # deterministic ids: warm rerun prints byte-identical JSON
        assert main(args) == 0
        assert json.loads(capsys.readouterr().out) == doc

    def test_inspect_subcommand(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        assert main(["sram", "--quick", "--json",
                     "--cache-dir", str(cache)]) == 0
        run_id = json.loads(capsys.readouterr().out)["run_id"]
        assert main(["inspect", run_id, "--cache-dir", str(cache)]) == 0
        report = capsys.readouterr().out
        assert run_id in report
        assert "state: finished" in report
        assert main(["inspect", run_id, "--cache-dir", str(cache),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == run_id
        assert doc["state"] == "finished"

    def test_inspect_unknown_run_exits_nonzero(self, tmp_path, capsys):
        assert main(["inspect", "no-such-run",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "unknown run" in capsys.readouterr().err

    def test_csv_out(self, tmp_path, capsys):
        out = tmp_path / "csv"
        assert main(["sram", "--quick", "--no-cache",
                     "--csv-out", str(out)]) == 0
        assert (out / "sram.csv").read_text().startswith("design")

    def test_cache_dir_and_manifest(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["sram", "--quick", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "0 cache hits" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert "1 cache hits" in second.err
        # results byte-identical between cold and warm runs
        assert first.out == second.out
        manifests = list((cache_dir / "manifests").glob("*.jsonl"))
        assert manifests, "manifest JSONL not written"

    def test_jobs_flag_serial_equivalence(self, tmp_path, capsys):
        base = ["fig19", "--memory-mb", "4", "--windows", "1",
                "--no-cache", "--cache-dir", str(tmp_path / "c")]
        assert main(base + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestInstrumentationFlags:
    # ext-vrt is the cheapest experiment that actually simulates
    # retention windows (so phases and sim.* probes are exercised).
    BASE = ["ext-vrt", "--quick", "--no-cache"]

    def test_profile_reports_phases_without_changing_stdout(self, capsys):
        assert main(self.BASE) == 0
        plain = capsys.readouterr()
        assert main(self.BASE + ["--profile"]) == 0
        profiled = capsys.readouterr()
        assert profiled.out == plain.out
        assert "profile:" in profiled.err
        assert "measure" in profiled.err

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(self.BASE + ["--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert f"trace: {trace}" in err
        events = [json.loads(line)
                  for line in trace.read_text().splitlines()]
        assert events, "no probe events written"
        assert all("event" in rec and "seq" in rec for rec in events)
        assert [rec["seq"] for rec in events] == list(range(len(events)))
        assert any(rec["event"] == "sim.window" for rec in events)

    def test_bench_json(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_sim.json"
        assert main(self.BASE + ["--profile",
                                 "--bench-json", str(bench)]) == 0
        payload = json.loads(bench.read_text())
        assert "measure" in payload["phases"]
        assert payload["counters"]["sim.windows"] >= 1
        assert {"cache_hits", "cache_misses",
                "cache_hit_rate"} <= payload["engine"].keys()

    def test_bench_json_requires_profile(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit):
            main(self.BASE + ["--bench-json", str(tmp_path / "b.json")])

    def test_trace_chrome_without_jsonl(self, tmp_path, capsys):
        import json

        chrome = tmp_path / "trace.chrome.json"
        assert main(self.BASE + ["--trace-chrome", str(chrome)]) == 0
        err = capsys.readouterr().err
        assert "ui.perfetto.dev" in err
        doc = json.loads(chrome.read_text())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants, "no instant events in chrome trace"
        assert any(e["name"] == "sim.window" for e in instants)
        assert doc["otherData"]["clock"] == "simulated"

    def test_trace_chrome_converts_the_jsonl_stream(self, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.chrome.json"
        assert main(self.BASE + ["--trace", str(trace),
                                 "--trace-chrome", str(chrome)]) == 0
        jsonl_events = len(trace.read_text().splitlines())
        doc = json.loads(chrome.read_text())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == jsonl_events

    def test_metrics_json(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(self.BASE + ["--metrics-json", str(metrics)]) == 0
        assert f"metrics: {metrics}" in capsys.readouterr().err
        doc = json.loads(metrics.read_text())
        assert set(doc) == {"merged", "jobs", "runs"}
        assert doc["merged"]["counters"]["sim.windows"] >= 1
        (run,) = doc["runs"]
        assert run["experiment_id"] == "ext-vrt"
        assert run["run_id"] is None  # BASE runs --no-cache
        assert len(run["trace_id"]) == 16

    def test_metrics_json_identical_across_fan_out(self, tmp_path):
        import json

        base = ["fig19", "--memory-mb", "4", "--windows", "1", "--no-cache"]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(base + ["--jobs", "1", "--metrics-json", str(a)]) == 0
        assert main(base + ["--jobs", "4", "--metrics-json", str(b)]) == 0
        da, db = json.loads(a.read_text()), json.loads(b.read_text())
        # wall-clock phases are machine- and schedule-dependent; every
        # simulated quantity must be exactly equal
        da["merged"].pop("phases"), db["merged"].pop("phases")
        for entry in da["jobs"] + db["jobs"]:
            entry["metrics"].pop("phases")
        assert da == db

    def test_watchdog_summary_and_stdout_unchanged(self, capsys):
        assert main(self.BASE) == 0
        plain = capsys.readouterr()
        assert main(self.BASE + ["--watchdog"]) == 0
        watched = capsys.readouterr()
        assert watched.out == plain.out
        assert "invariants:" in watched.err
        assert "0 violations" in watched.err

    def test_watchdog_findings_in_bench_json(self, tmp_path):
        import json

        bench = tmp_path / "BENCH_sim.json"
        assert main(self.BASE + ["--profile", "--watchdog",
                                 "--bench-json", str(bench)]) == 0
        payload = json.loads(bench.read_text())
        assert payload["invariants"]["checks"] > 0
        assert payload["invariants"]["violation_count"] == 0


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import api

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out.endswith(api.version())
        assert api.version() == "1.0.0"
