"""Tests for the python -m repro.experiments command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_runs_lightweight_experiment(self, capsys):
        assert main(["sram", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[sram]" in out
        assert "337.14" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["nonesuch"])

    def test_scale_flags(self, capsys):
        assert main(["fig04", "--memory-mb", "8", "--windows", "1"]) == 0
        assert "refresh share" in capsys.readouterr().out

    def test_tab01(self, capsys):
        assert main(["tab01", "--quick", "--seed", "3"]) == 0
        assert "bitbrains" in capsys.readouterr().out
