"""Tests for the unified run lifecycle: RunRequest, retry, journal.

These exercise the policy layer with tiny synthetic jobs (no DRAM
simulation) so failures, backoff and journal behaviour are asserted in
milliseconds; the real-simulation acceptance paths live in
``test_resume_integration.py`` and ``tests/sim/test_checkpoint.py``.
"""

import warnings
from dataclasses import replace

import pytest

import repro.api as api
from repro.experiments import REGISTRY
from repro.experiments.engine import (
    Experiment,
    RetryPolicy,
    Runner,
    SimJob,
)
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.journal import default_run_id, journal_path
from repro.experiments.lifecycle import (
    RunRequest,
    execute,
    execute_all,
    resolve_jobs,
    runner_for,
)
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.obs import ProbeBus

MICRO = ExperimentSettings(
    memory_bytes=4 << 20, windows=1, benchmarks=("alpha", "beta", "gamma"),
    rows_per_ar=32, seed=3,
)

TINY_FN = "tests.experiments.test_lifecycle:tiny_job"
FAILING_FN = "tests.experiments.test_lifecycle:failing_job"


def tiny_job(settings, job):
    """Instant deterministic job body (no simulation)."""
    return {"benchmark": job.benchmark, "value": len(job.benchmark)}


def failing_job(settings, job):
    raise RuntimeError("synthetic job failure")


def tiny_plan(settings):
    return [SimJob(benchmark=name, fn=TINY_FN)
            for name in settings.benchmarks]


def tiny_reduce(settings, results):
    return ExperimentResult(
        experiment_id="_lifecycle_tiny",
        title="tiny lifecycle experiment",
        headers=["benchmark", "value"],
        rows=[[r["benchmark"], r["value"]] for r in results],
    )


TINY = Experiment("_lifecycle_tiny", plan=tiny_plan, reduce=tiny_reduce)


@pytest.fixture(autouse=True)
def register_tiny(monkeypatch):
    monkeypatch.setitem(REGISTRY, "_lifecycle_tiny", TINY)


class FakeSleep:
    def __init__(self):
        self.calls = []

    def __call__(self, seconds):
        self.calls.append(round(seconds, 6))


class TestRunRequestRouting:
    def test_execute_runs_registered_experiment(self, tmp_path):
        result = execute(RunRequest(
            "_lifecycle_tiny", settings=MICRO, jobs=1,
            cache_dir=tmp_path / "cache",
        ))
        assert result.rows == [["alpha", 5], ["beta", 4], ["gamma", 5]]

    def test_unknown_experiment_names_known_ids(self):
        with pytest.raises(KeyError, match="fig17"):
            execute(RunRequest("not-an-experiment"))

    def test_api_run_is_execute(self, tmp_path):
        result = api.run(api.RunRequest(
            "_lifecycle_tiny", settings=MICRO, jobs=1,
            cache_dir=tmp_path / "cache",
        ))
        assert result.experiment_id == "_lifecycle_tiny"

    def test_execute_all_shares_one_runner(self, monkeypatch, tmp_path):
        other = Experiment("_lifecycle_other", plan=tiny_plan,
                           reduce=tiny_reduce)
        monkeypatch.setattr(
            "repro.experiments.REGISTRY",
            {"_lifecycle_tiny": TINY, "_lifecycle_other": other},
        )
        runner = runner_for(RunRequest(
            "_lifecycle_tiny", settings=MICRO, jobs=1,
            cache_dir=tmp_path / "cache",
        ))
        results = execute_all(
            RunRequest("_lifecycle_tiny", settings=MICRO, jobs=1),
            runner=runner,
        )
        assert set(results) == {"_lifecycle_tiny", "_lifecycle_other"}
        # one shared runner saw both plans; the second experiment's
        # identical jobs hit the shared cache instead of re-executing
        assert runner.stats.jobs == 6
        assert runner.stats.cache_misses == 3
        assert runner.stats.cache_hits == 3


class TestDeprecatedShims:
    def test_run_experiment_warns_and_still_works(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="RunRequest"):
            result = api.run_experiment(
                "_lifecycle_tiny", settings=MICRO,
                cache_dir=tmp_path / "cache", jobs=1,
            )
        assert result.rows[0] == ["alpha", 5]

    def test_run_all_warns_and_still_works(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.experiments.REGISTRY", {"_lifecycle_tiny": TINY}
        )
        with pytest.warns(DeprecationWarning, match="run_all"):
            results = api.run_all(
                settings=MICRO, cache_dir=tmp_path / "cache", jobs=1
            )
        assert list(results) == ["_lifecycle_tiny"]

    def test_blessed_path_does_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.run(api.RunRequest(
                "_lifecycle_tiny", settings=MICRO, jobs=1,
                cache_dir=tmp_path / "cache",
            ))


class TestProbesCoercion:
    def test_explicit_jobs_overridden_with_warning(self):
        with pytest.warns(RuntimeWarning, match="jobs=1"):
            assert resolve_jobs(4, ProbeBus()) == 1

    def test_default_jobs_coerced_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs(None, ProbeBus()) == 1
            assert resolve_jobs(1, ProbeBus()) == 1

    def test_no_probes_no_coercion(self):
        assert resolve_jobs(4, None) == 4

    def test_runner_for_applies_coercion(self):
        with pytest.warns(RuntimeWarning):
            runner = runner_for(RunRequest(
                "_lifecycle_tiny", jobs=4, probes=ProbeBus(), cache=False,
            ))
        assert runner.jobs == 1


class TestRetryBackoff:
    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0,
                             backoff_max_s=0.15)
        assert policy.backoff_s(1) == pytest.approx(0.05)
        assert policy.backoff_s(2) == pytest.approx(0.10)
        assert policy.backoff_s(3) == pytest.approx(0.15)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.15)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_worker_crashes=0)

    def test_serial_retries_sleep_the_backoff_sequence(self):
        """Three failing attempts produce exactly the two scheduled
        backoff sleeps, then quarantine (injected clock: no real time)."""
        sleep = FakeSleep()
        runner = Runner(
            jobs=1, cache=None,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05),
            sleep=sleep, journal=False,
        )
        results = runner.run_jobs(
            "_t", MICRO, [SimJob(benchmark="doomed", fn=FAILING_FN)]
        )
        assert results == [None]
        assert sleep.calls == [0.05, 0.1]
        assert len(runner.failures) == 1
        failure = runner.failures[0]
        assert failure.attempts == 3
        assert "synthetic job failure" in failure.error
        assert runner.stats.retries == 2
        assert runner.stats.quarantined == 1

    def test_injected_crash_retries_then_succeeds(self):
        sleep = FakeSleep()
        runner = Runner(
            jobs=1, cache=None,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.02),
            faults=FaultPlan((FaultSpec(job_index=0, kind="crash", times=1),)),
            sleep=sleep, journal=False,
        )
        results = runner.run_jobs(
            "_t", MICRO, [SimJob(benchmark="alpha", fn=TINY_FN)]
        )
        assert results == [{"benchmark": "alpha", "value": 5}]
        assert sleep.calls == [0.02]
        assert runner.stats.retries == 1
        assert runner.stats.faults_injected == 1
        assert not runner.failures


class TestQuarantine:
    def test_poisoned_job_yields_partial_failure_report(self, tmp_path):
        """A job that fails every attempt is quarantined; the rest of
        the plan completes and the result is the partial report."""
        bus = ProbeBus()
        request = RunRequest(
            "_lifecycle_tiny", settings=MICRO,
            cache_dir=tmp_path / "cache", probes=bus,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.001),
            faults=FaultPlan((FaultSpec(job_index=1, kind="crash",
                                        times=99),)),
        )
        runner = runner_for(request)
        result = execute(request, runner=runner)

        assert "PARTIAL FAILURE" in result.title
        assert len(runner.failures) == 1
        assert runner.failures[0].benchmark == "beta"
        assert runner.failures[0].attempts == 2
        assert runner.last_run_id in str(result.notes)
        # the two healthy jobs completed and were cached + journaled
        assert runner.stats.quarantined == 1
        assert runner.stats.cache_misses == 3  # all three were attempted
        counters = bus.snapshot()["counters"]
        assert counters["engine.quarantined_jobs"] == 1
        failed_entries = [m for m in runner.manifest if m.get("failed")]
        assert len(failed_entries) == 1

    def test_quarantined_run_resumes_to_completion(self, tmp_path):
        """After the fault is gone, resuming the partial run replays the
        journaled jobs and finishes the one that was quarantined."""
        faulty = RunRequest(
            "_lifecycle_tiny", settings=MICRO,
            cache_dir=tmp_path / "cache",
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.001),
            faults=FaultPlan((FaultSpec(job_index=1, kind="crash",
                                        times=99),)),
        )
        faulty_runner = runner_for(faulty)
        execute(faulty, runner=faulty_runner)
        token = faulty_runner.last_run_id

        bus = ProbeBus()
        request = RunRequest(
            "_lifecycle_tiny", settings=MICRO,
            cache_dir=tmp_path / "cache", resume=token, probes=bus,
        )
        runner = runner_for(request)
        result = execute(request, runner=runner)
        assert result.rows == [["alpha", 5], ["beta", 4], ["gamma", 5]]
        counters = bus.snapshot()["counters"]
        assert counters["engine.journal_replays"] == 2
        assert counters["engine.journal_resumes"] == 1


class TestJournal:
    def _run(self, tmp_path, *, resume=None, bus=None, settings=MICRO):
        request = RunRequest(
            "_lifecycle_tiny", settings=settings,
            cache_dir=tmp_path / "cache", resume=resume, probes=bus,
        )
        runner = runner_for(request)
        return execute(request, runner=runner), runner

    def test_default_run_id_is_deterministic(self, tmp_path):
        _, first = self._run(tmp_path)
        _, second = self._run(tmp_path)
        assert first.last_run_id == second.last_run_id
        assert first.last_run_id == default_run_id("_lifecycle_tiny", MICRO)

    def test_resume_replays_journaled_jobs(self, tmp_path):
        reference, first = self._run(tmp_path)
        bus = ProbeBus()
        result, runner = self._run(
            tmp_path, resume=first.last_run_id, bus=bus
        )
        assert result.to_json() == reference.to_json()
        counters = bus.snapshot()["counters"]
        assert counters["engine.journal_replays"] == 3
        assert runner.stats.journal_replays == 3
        replayed = [m for m in runner.manifest if m.get("journal_replay")]
        assert len(replayed) == 3

    def test_corrupt_journal_tail_is_tolerated(self, tmp_path):
        reference, first = self._run(tmp_path)
        path = journal_path((tmp_path / "cache"), first.last_run_id)
        with path.open("ab") as fh:
            fh.write(b'{"truncated garbage...\x00\xff\n')
        bus = ProbeBus()
        result, _ = self._run(tmp_path, resume=first.last_run_id, bus=bus)
        assert result.to_json() == reference.to_json()
        counters = bus.snapshot()["counters"]
        assert counters["engine.journal_corrupt"] == 1
        # the intact prefix still replays
        assert counters["engine.journal_replays"] == 3

    def test_truncated_final_line_replays_the_intact_prefix(self, tmp_path):
        """A run killed mid-``write`` leaves a half-written final line;
        the prefix before it must replay as if the tail never happened."""
        reference, first = self._run(tmp_path)
        path = journal_path((tmp_path / "cache"), first.last_run_id)
        raw = path.read_bytes().rstrip(b"\n")
        lines = raw.split(b"\n")
        assert len(lines) == 4  # header + three job lines
        # keep the header and two intact job lines; cut the last job
        # line off mid-record
        torn = b"\n".join(lines[:-1]) + b"\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_bytes(torn)
        bus = ProbeBus()
        result, runner = self._run(
            tmp_path, resume=first.last_run_id, bus=bus
        )
        assert result.to_json() == reference.to_json()
        counters = bus.snapshot()["counters"]
        assert counters["engine.journal_corrupt"] == 1
        assert counters["engine.journal_replays"] == 2
        assert runner.stats.journal_replays == 2

    def test_stale_journal_for_changed_plan_starts_clean(self, tmp_path):
        _, first = self._run(tmp_path)
        changed = replace(MICRO, benchmarks=("alpha", "beta"))
        bus = ProbeBus()
        result, _ = self._run(
            tmp_path, resume=first.last_run_id, bus=bus, settings=changed
        )
        assert result.rows == [["alpha", 5], ["beta", 4]]
        counters = bus.snapshot()["counters"]
        assert counters["engine.journal_stale"] == 1
        assert "engine.journal_replays" not in counters

    def test_missing_journal_is_counted_not_fatal(self, tmp_path):
        bus = ProbeBus()
        result, _ = self._run(tmp_path, resume="never-written", bus=bus)
        assert result.rows[0] == ["alpha", 5]
        assert bus.snapshot()["counters"]["engine.journal_missing"] == 1

    def test_journal_disabled_skips_tokens(self, tmp_path):
        request = RunRequest(
            "_lifecycle_tiny", settings=MICRO,
            cache_dir=tmp_path / "cache", journal=False,
        )
        runner = runner_for(request)
        execute(request, runner=runner)
        assert runner.last_run_id is None
        assert not (tmp_path / "cache" / "journal").exists()
