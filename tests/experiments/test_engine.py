"""Tests for the parallel experiment engine and its result cache."""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.experiments import REGISTRY, ExperimentSettings
from repro.experiments.cache import ResultCache, canonicalize, stable_digest
from repro.experiments.engine import (
    Experiment,
    Runner,
    SimJob,
    execute_job,
    sweep_jobs,
)
from repro.transform.codec import StageSelection

MICRO = ExperimentSettings(
    memory_bytes=4 << 20,
    windows=1,
    benchmarks=("gemsFDTD", "omnetpp"),
    rows_per_ar=32,
    seed=3,
)

JOB = SimJob(benchmark="gemsFDTD", allocated_fraction=0.7,
             config_overrides={"celltype_error_rate": 0.05}, seed_offset=2)


class TestCacheKeys:
    def test_key_is_deterministic(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.job_key(MICRO, JOB) == cache.job_key(MICRO, JOB)

    def test_key_stable_across_processes(self, tmp_path):
        """The digest must not depend on process state (hash seed etc.)."""
        script = (
            "from repro.experiments.cache import ResultCache\n"
            "from repro.experiments.engine import SimJob\n"
            "from repro.experiments import ExperimentSettings\n"
            "s = ExperimentSettings(memory_bytes=4 << 20, windows=1,\n"
            "                       benchmarks=('gemsFDTD', 'omnetpp'),\n"
            "                       rows_per_ar=32, seed=3)\n"
            "j = SimJob(benchmark='gemsFDTD', allocated_fraction=0.7,\n"
            "           config_overrides={'celltype_error_rate': 0.05},\n"
            "           seed_offset=2)\n"
            "print(ResultCache('unused').job_key(s, j))\n"
        )
        keys = set()
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={**os.environ, "PYTHONHASHSEED": "random"},
            )
            assert proc.returncode == 0, proc.stderr
            keys.add(proc.stdout.strip())
        assert keys == {ResultCache(tmp_path).job_key(MICRO, JOB)}

    def test_key_changes_with_settings(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.job_key(MICRO, JOB)
        from dataclasses import replace

        assert cache.job_key(replace(MICRO, windows=2), JOB) != base
        assert cache.job_key(replace(MICRO, seed=4), JOB) != base
        assert cache.job_key(replace(MICRO, memory_bytes=8 << 20), JOB) != base

    def test_key_changes_with_job(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.job_key(MICRO, JOB)
        from dataclasses import replace

        assert cache.job_key(MICRO, replace(JOB, seed_offset=3)) != base
        assert cache.job_key(MICRO, replace(JOB, benchmark="mcf")) != base
        assert cache.job_key(
            MICRO, replace(JOB, config_overrides={"celltype_error_rate": 0.1})
        ) != base

    def test_dataclass_overrides_canonicalize(self):
        a = {"stages": StageSelection.full(), "staggered_counters": True}
        b = {"staggered_counters": True, "stages": StageSelection.full()}
        assert stable_digest(a) == stable_digest(b)
        c = {"stages": StageSelection.none(), "staggered_counters": True}
        assert stable_digest(a) != stable_digest(c)

    def test_canonicalize_rejects_opaque_objects(self):
        with pytest.raises(TypeError, match="stable cache key"):
            canonicalize(object())

    def test_experiment_key_distinct_from_job_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert (cache.experiment_key("fig14", MICRO)
                != cache.experiment_key("fig15", MICRO))


class TestResultCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert ("ab" * 32) in cache

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # removed, not left to fail again

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("01" * 32, 1)
        cache.put("23" * 32, 2)
        assert cache.clear() == 2
        assert cache.get("01" * 32) is None


class TestEngineExecution:
    def test_parallel_equals_serial(self, tmp_path):
        """Same seeds -> identical results regardless of fan-out."""
        serial = Runner(jobs=1, cache=None)
        parallel = Runner(jobs=2, cache=None)
        experiment = REGISTRY["fig17"]
        assert (serial.run_experiment(experiment, MICRO).rows
                == parallel.run_experiment(experiment, MICRO).rows)

    def test_cache_hit_serves_identical_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = Runner(jobs=1, cache=cache)
        warm = Runner(jobs=1, cache=cache)
        experiment = REGISTRY["fig17"]
        first = cold.run_experiment(experiment, MICRO)
        second = warm.run_experiment(experiment, MICRO)
        assert first.rows == second.rows
        assert cold.stats.cache_misses == len(MICRO.benchmarks)
        assert warm.stats.cache_hits == len(MICRO.benchmarks)
        assert warm.stats.cache_misses == 0

    def test_duplicate_jobs_computed_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(jobs=1, cache=cache)
        job = SimJob(benchmark="gemsFDTD")
        results = runner.run_jobs("dup", MICRO, [job, job, job])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert len(list(cache.entries())) == 1

    def test_sweep_jobs_mirror_serial_harness(self):
        jobs = sweep_jobs(MICRO, allocated_fraction=0.7)
        assert [j.benchmark for j in jobs] == list(MICRO.benchmarks)
        assert [j.seed_offset for j in jobs] == [0, 1]
        from repro.experiments.runner import sweep_benchmarks

        direct = sweep_benchmarks(MICRO, allocated_fraction=0.7)
        via_engine = [execute_job(MICRO, j) for j in jobs]
        for name, result in zip(MICRO.benchmarks, via_engine):
            assert result.normalized_refresh == direct[name].normalized_refresh

    def test_run_result_pickles(self):
        result = execute_job(MICRO, SimJob(benchmark="gemsFDTD"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.normalized_refresh == result.normalized_refresh
        assert json.dumps(clone.to_dict())  # JSON-able view


class TestLegacyShim:
    def _experiment(self, calls):
        from repro.experiments.runner import ExperimentResult

        def legacy_run(settings):
            calls.append(settings)
            return ExperimentResult("toy", "toy", ["a"], [[1]])

        return Experiment("toy", run=legacy_run)

    def test_direct_call_still_works(self):
        calls = []
        result = self._experiment(calls)(MICRO)
        assert result.rows == [[1]] and calls == [MICRO]

    def test_whole_result_caching(self, tmp_path):
        calls = []
        experiment = self._experiment(calls)
        cache = ResultCache(tmp_path)
        runner = Runner(jobs=1, cache=cache)
        runner.run_experiment(experiment, MICRO)
        runner.run_experiment(experiment, MICRO)
        assert len(calls) == 1  # second run served from cache
        assert runner.stats.cache_hits == 1
        hit_entry = runner.manifest[-1]
        assert hit_entry["cache_hit"] and hit_entry["fn"] == "legacy:run"

    def test_registry_wraps_every_legacy_module(self):
        for experiment in REGISTRY.values():
            assert isinstance(experiment, Experiment)
            assert experiment.is_legacy or (experiment.plan and experiment.reduce)

    def test_experiment_requires_plan_or_run(self):
        with pytest.raises(ValueError, match="plan"):
            Experiment("bad")
        with pytest.raises(ValueError, match="not both"):
            Experiment("bad", plan=lambda s: [], reduce=lambda s, r: None,
                       run=lambda s: None)


class TestManifest:
    def test_manifest_entries_and_jsonl(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = Runner(jobs=1, cache=cache)
        runner.run_experiment(REGISTRY["fig17"], MICRO)
        assert len(runner.manifest) == len(MICRO.benchmarks)
        for entry in runner.manifest:
            assert {"experiment_id", "digest", "settings_digest",
                    "cache_hit", "wall_s", "worker"} <= set(entry)
            assert entry["experiment_id"] == "fig17"
            assert not entry["cache_hit"] and entry["wall_s"] > 0

        path = tmp_path / "manifest.jsonl"
        runner.write_manifest(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["digest"] for e in lines] == [
            e["digest"] for e in runner.manifest
        ]
