"""Smoke + shape tests for every experiment runner at micro scale."""

import pytest

from repro.experiments import REGISTRY, ExperimentSettings
from repro.experiments.runner import QUICK_BENCHMARKS


MICRO = ExperimentSettings(
    memory_bytes=4 << 20,
    windows=1,
    benchmarks=("gemsFDTD", "omnetpp"),
    rows_per_ar=32,
    seed=3,
)


def run(experiment_id, settings=MICRO):
    return REGISTRY[experiment_id](settings)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"fig04", "tab01", "fig05", "fig06", "fig14", "fig15",
                    "fig16", "fig17", "fig18", "fig19", "sram"}
        assert expected <= set(REGISTRY)

    def test_quick_settings(self):
        quick = ExperimentSettings.quick()
        assert quick.memory_bytes < ExperimentSettings().memory_bytes
        assert set(quick.benchmarks) == set(QUICK_BENCHMARKS)


class TestLightweightExperiments:
    def test_fig04_headline(self):
        result = run("fig04")
        shares = {(row[0], row[1]): row[4] for row in result.rows}
        assert shares[("extended", "16 Gb")] > 0.5
        assert shares[("normal", "16 Gb")] < shares[("extended", "16 Gb")]

    def test_tab01_means(self):
        result = run("tab01")
        for row in result.rows:
            assert row[2] == pytest.approx(row[3], abs=0.03)

    def test_fig05_ordering(self):
        result = run("fig05")
        by_name = {row[0]: row[1:] for row in result.rows}
        # At x=0.5 bitbrains is mostly below, alibaba entirely above.
        assert by_name["bitbrains"][4] > 0.8
        assert by_name["alibaba"][4] < 0.05

    def test_fig06_averages(self):
        result = run("fig06")
        avg = result.rows[-1]
        assert avg[0] == "average"
        assert 0.0 <= avg[1] <= 0.2  # zero 1KB blocks
        assert 0.2 <= avg[2] <= 0.6  # zero bytes

    def test_sram_numbers(self):
        result = run("sram")
        naive, opt = result.rows[0], result.rows[1]
        assert naive[2] == pytest.approx(337.14, rel=1e-3)
        assert opt[2] == pytest.approx(2.71, rel=1e-3)
        assert opt[3] == pytest.approx(0.076, rel=1e-3)


class TestSimulationExperiments:
    def test_fig14_scenarios_monotone(self):
        result = run("fig14")
        avg = next(r for r in result.rows if r[0] == "average")
        # normalized refresh must fall as allocation falls
        assert avg[1] > avg[3] > avg[4]

    def test_fig15_energy_close_to_refresh(self):
        fig14 = run("fig14")
        fig15 = run("fig15")
        avg14 = next(r for r in fig14.rows if r[0] == "average")
        avg15 = next(r for r in fig15.rows if r[0] == "average")
        for col in (1, 4):
            assert avg15[col] >= avg14[col] - 1e-9
            assert avg15[col] - avg14[col] < 0.15

    def test_fig17_gains_ordering(self):
        result = run("fig17")
        by_name = {row[0]: row[1] for row in result.rows}
        assert by_name["gemsFDTD"] > by_name["omnetpp"] >= 1.0

    def test_fig18_row_size_ordering(self):
        result = run("fig18")
        avg = next(r for r in result.rows if r[0] == "average")
        assert avg[1] < avg[2] < avg[3]

    def test_fig19_smart_refresh_fades(self):
        result = run("fig19")
        smart = [row[1] for row in result.rows]
        zero = [row[2] for row in result.rows]
        assert smart[0] < smart[-1]  # smart gets worse with capacity
        assert smart[-1] > 0.85
        assert max(zero) - min(zero) < max(smart) - min(smart)

    def test_fig16_delta_direction(self):
        result = run("fig16")
        avg = next(r for r in result.rows if r[0] == "average")
        assert avg[2] >= avg[1] - 1e-9  # 64ms never beats 32ms


class TestAblations:
    def test_stage_contributions_monotone(self):
        result = run("abl-stages")
        gems = [row[1] for row in result.rows]
        # raw >= +EBDI >= +bitplane >= full
        assert gems[0] >= gems[1] >= gems[2] >= gems[3]
        assert gems[3] < gems[0]

    def test_celltype_errors_degrade(self):
        result = run("abl-celltype")
        gems = [row[1] for row in result.rows]
        assert gems == sorted(gems)

    def test_wordsize_runs(self):
        result = run("abl-wordsize")
        assert len(result.rows) == 2
        for row in result.rows:
            assert all(0 < v <= 1.0 for v in row[1:])

    def test_tracking_designs_agree_roughly(self):
        result = run("abl-tracking")
        opt, naive = result.rows[0], result.rows[1]
        for a, b in zip(opt[1:], naive[1:]):
            assert abs(a - b) < 0.25


class TestRendering:
    def test_render_includes_reference(self):
        result = run("sram")
        text = result.render()
        assert "[sram]" in text
        assert "337.14" in text
        assert "paper:" in text


class TestExtensionExperiments:
    def test_ext_hybrid_never_worse(self):
        result = run("ext-hybrid")
        for row in result.rows:
            assert row[3] <= row[2] + 1e-9

    def test_abl_compression_divergence(self):
        result = run("abl-compression")
        by_class = {row[0]: row for row in result.rows}
        assert by_class["zero"][3] == 8
        assert by_class["random"][3] == 0
        assert by_class["float64"][1] < 1.1
        assert by_class["float64"][3] >= 1


class TestCsvExport:
    def test_to_csv_roundtrips_table(self):
        import csv
        import io

        result = run("sram")
        parsed = list(csv.reader(io.StringIO(result.to_csv())))
        assert parsed[0] == result.headers
        assert len(parsed) == len(result.rows) + 1

    def test_save_csv(self, tmp_path):
        result = run("tab01")
        path = tmp_path / "tab01.csv"
        result.save_csv(path)
        assert path.read_text().startswith("trace,")

    def test_ext_vrt_exposure_grows(self):
        result = run("ext-vrt")
        raidr = [row for row in result.rows if row[0].startswith("RAIDR")]
        unsafe = [row[2] for row in raidr]
        assert unsafe == sorted(unsafe) and unsafe[-1] > 0
        assert result.rows[-1][2] == 0

    def test_ext_scheduling_composes(self):
        result = run("ext-scheduling")
        by_policy = {row[0]: row[3] for row in result.rows}
        assert (by_policy["zero-refresh + pausing"]
                <= min(by_policy["pausing"], by_policy["zero-refresh"]) + 1e-9)
