"""Backend resolution and execution-vehicle transparency.

``resolve_backend`` is the one switch between names, instances and the
historical jobs-derived default; these tests pin its contract.  The
transparency half re-states the engine guarantee at the backend seam:
an explicit backend changes *where* jobs run, never *what* the runner
records.
"""

import json
import os

import pytest

from repro.experiments import REGISTRY
from repro.experiments.backends import (
    BACKEND_NAMES,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.engine import Runner
from repro.experiments.runner import ExperimentSettings

MICRO = ExperimentSettings(
    memory_bytes=4 << 20,
    windows=1,
    benchmarks=("gemsFDTD", "omnetpp"),
    rows_per_ar=32,
    seed=3,
)


def deterministic(manifest):
    doc = json.loads(json.dumps(manifest))
    doc["merged"].pop("phases", None)
    doc.pop("runs", None)
    for entry in doc["jobs"]:
        entry["metrics"].pop("phases", None)
    return doc


class TestResolveBackend:
    def test_none_means_jobs_derived_default(self):
        assert resolve_backend(None) is None

    def test_names_resolve_to_instances(self):
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("pool").name == "pool"

    def test_ready_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("carrier-pigeon")
        assert set(BACKEND_NAMES) == {"serial", "pool", "cluster"}

    def test_cluster_knobs_require_cluster(self):
        with pytest.raises(ValueError, match="cluster"):
            resolve_backend(None, workers=2)
        with pytest.raises(ValueError, match="cluster"):
            resolve_backend("pool", worker_address="127.0.0.1:7071")


class TestExecutionTransparency:
    def test_explicit_serial_overrides_jobs(self):
        runner = Runner(jobs=4, cache=None, backend=SerialBackend())
        runner.run_experiment(REGISTRY["fig17"], MICRO)
        executed = [m for m in runner.manifest if not m["cache_hit"]]
        assert executed
        assert all(m["worker"] == os.getpid() for m in executed)

    def test_explicit_pool_fans_out_from_jobs1(self):
        runner = Runner(jobs=1, cache=None, backend=PoolBackend())
        runner.run_experiment(REGISTRY["fig17"], MICRO)
        executed = [m for m in runner.manifest if not m["cache_hit"]]
        assert executed
        assert all(m["worker"] != os.getpid() for m in executed)

    def test_backends_agree_on_every_deterministic_number(self):
        serial = Runner(jobs=1, cache=None, backend=SerialBackend())
        pooled = Runner(jobs=2, cache=None, backend=PoolBackend())
        serial.run_experiment(REGISTRY["fig17"], MICRO)
        pooled.run_experiment(REGISTRY["fig17"], MICRO)
        assert (deterministic(serial.metrics_manifest())
                == deterministic(pooled.metrics_manifest()))

    def test_close_without_backend_is_a_no_op(self):
        Runner(jobs=1, cache=None).close()
