"""Experiment-test fixtures.

Points the engine's default cache at a per-test temporary directory so
CLI invocations inside tests never write a ``.repro-cache`` into the
working tree.
"""

import pytest


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    cache_dir = tmp_path / "repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    return cache_dir
