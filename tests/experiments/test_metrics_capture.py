"""Per-job metrics capture through the engine.

The acceptance bar for the metrics pipeline: the merged manifest is a
property of the *plan*, not of how it executed — fan-out width, cache
warmth and completion order must not change a single deterministic
number.  Only the ``phases`` section (wall-clock) may differ between
fresh runs.
"""

import json

from repro.experiments import REGISTRY, ExperimentSettings
from repro.experiments.cache import ResultCache
from repro.experiments.engine import Runner, SimJob
from repro.obs import ProbeBus, use_probes

MICRO = ExperimentSettings(
    memory_bytes=4 << 20,
    windows=1,
    benchmarks=("gemsFDTD", "omnetpp"),
    rows_per_ar=32,
    seed=3,
)


def _deterministic(manifest):
    """The manifest minus machine-dependent wall-clock sections (and
    the runs section, whose run ids differ across resume scenarios)."""
    doc = json.loads(json.dumps(manifest))
    doc["merged"].pop("phases", None)
    doc.pop("runs", None)
    for entry in doc["jobs"]:
        entry["metrics"].pop("phases", None)
    return doc


class TestFanOutTransparency:
    def test_parallel_merged_metrics_equal_serial(self):
        serial = Runner(jobs=1, cache=None)
        parallel = Runner(jobs=2, cache=None)
        experiment = REGISTRY["fig17"]
        serial.run_experiment(experiment, MICRO)
        parallel.run_experiment(experiment, MICRO)
        a = _deterministic(serial.metrics_manifest())
        b = _deterministic(parallel.metrics_manifest())
        assert a == b
        # and the metrics are real, not empty shells
        assert a["merged"]["counters"]["sim.windows"] > 0
        assert a["merged"]["histograms"]["sim.window_skip_rate"]["count"] > 0
        assert [e["digest"] for e in a["jobs"]] == [
            e["digest"] for e in b["jobs"]
        ]

    def test_duplicate_jobs_counted_once(self):
        runner = Runner(jobs=1, cache=None)
        job = SimJob(benchmark="gemsFDTD")
        runner.run_jobs("dup", MICRO, [job, job, job])
        manifest = runner.metrics_manifest()
        assert len(manifest["jobs"]) == 1
        single = Runner(jobs=1, cache=None)
        single.run_jobs("dup", MICRO, [job])
        assert (_deterministic(manifest)["merged"]
                == _deterministic(single.metrics_manifest())["merged"])


class TestCacheReplay:
    def test_warm_run_replays_stored_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = REGISTRY["fig17"]
        cold = Runner(jobs=1, cache=cache)
        cold.run_experiment(experiment, MICRO)
        warm = Runner(jobs=1, cache=cache)
        warm.run_experiment(experiment, MICRO)
        assert warm.stats.cache_hits == len(MICRO.benchmarks)
        # stored snapshots replay verbatim: the full manifests match,
        # including phases, because hits reuse the original measurement
        assert warm.metrics_manifest() == cold.metrics_manifest()

    def test_watchdog_findings_survive_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = REGISTRY["fig17"]
        cold = Runner(jobs=1, cache=cache, watchdog=True)
        cold.run_experiment(experiment, MICRO)
        warm = Runner(jobs=1, cache=cache, watchdog=True)
        warm.run_experiment(experiment, MICRO)
        for runner in (cold, warm):
            inv = runner.merged_metrics["invariants"]
            assert inv["checks"] > 0
            assert inv["violation_count"] == 0, inv
        assert (cold.merged_metrics["invariants"]
                == warm.merged_metrics["invariants"])

    def test_unwatched_runs_have_no_invariants_section(self):
        runner = Runner(jobs=1, cache=None)
        runner.run_experiment(REGISTRY["fig17"], MICRO)
        assert "invariants" not in runner.merged_metrics


class TestAmbientReplay:
    def test_cold_and_warm_ambient_counters_match(self, tmp_path):
        """With --profile/--trace style instrumentation installed, a
        cache-served run reports the same simulation counters on the
        ambient bus as the run that computed them."""
        cache = ResultCache(tmp_path)
        experiment = REGISTRY["fig17"]

        cold_bus = ProbeBus()
        with use_probes(cold_bus):
            Runner(jobs=1, cache=cache).run_experiment(experiment, MICRO)
        warm_bus = ProbeBus()
        with use_probes(warm_bus):
            Runner(jobs=1, cache=cache).run_experiment(experiment, MICRO)

        assert warm_bus.counters == cold_bus.counters
        assert (warm_bus.snapshot()["histograms"]
                == cold_bus.snapshot()["histograms"])
        # executed jobs replay phases (profile support); cache hits do
        # not pretend to have spent the original wall time
        assert "measure" in cold_bus.wall_times
        assert "measure" not in warm_bus.wall_times

    def test_fork_streams_events_to_live_sink(self):
        from repro.obs import ListTraceSink

        sink = ListTraceSink()
        bus = ProbeBus(trace=sink)
        with use_probes(bus):
            Runner(jobs=1, cache=None).run_jobs(
                "trace", MICRO, [SimJob(benchmark="gemsFDTD")]
            )
        assert sink.events_written > 0
        seqs = [rec["seq"] for rec in sink.records]
        assert seqs == sorted(seqs)


class TestManifestFile:
    def test_write_metrics_manifest(self, tmp_path):
        runner = Runner(jobs=1, cache=None, watchdog=True)
        runner.run_experiment(REGISTRY["fig17"], MICRO)
        path = tmp_path / "out" / "metrics.json"
        runner.write_metrics_manifest(path)
        doc = json.loads(path.read_text())
        assert set(doc) == {"merged", "jobs", "runs"}
        assert doc["merged"]["counters"]["sim.windows"] > 0
        assert doc["merged"]["invariants"]["violation_count"] == 0
        assert len(doc["jobs"]) == len(MICRO.benchmarks)
        # cache-less runs have no resume token but always a trace id
        (run,) = doc["runs"]
        assert run["experiment_id"] == "fig17"
        assert run["run_id"] is None
        assert len(run["trace_id"]) == 16
