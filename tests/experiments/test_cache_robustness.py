"""Corrupt/truncated cache entries must degrade to misses, not errors."""

import pickle

import pytest

from repro.experiments.cache import ResultCache
from repro.obs import ProbeBus, use_probes
from repro.obs.probes import ListTraceSink


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


KEY = "ab" + "0" * 62


class TestCorruptEntries:
    def test_truncated_pickle_is_a_miss_and_is_removed(self, cache):
        cache.put(KEY, {"result": "payload", "metrics": {}})
        path = cache.path_for(KEY)
        intact = path.read_bytes()
        path.write_bytes(intact[: len(intact) // 2])  # truncate mid-stream

        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        assert not path.exists()  # broken entry removed
        assert bus.counters["cache.corrupt_entries"] == 1

    def test_garbage_bytes_are_a_miss(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a pickle")
        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        assert bus.counters["cache.corrupt_entries"] == 1

    def test_empty_file_is_a_miss(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")
        with use_probes(ProbeBus()):
            assert cache.get(KEY) is None
        assert not path.exists()

    def test_overwrite_after_corruption_recovers(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        path = cache.path_for(KEY)
        path.write_bytes(path.read_bytes()[:10])
        with use_probes(ProbeBus()):
            assert cache.get(KEY) is None
        cache.put(KEY, {"result": 2, "metrics": {}})
        assert cache.get(KEY) == {"result": 2, "metrics": {}}

    def test_trace_event_emitted_when_tracing(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        path = cache.path_for(KEY)
        path.write_bytes(b"\x80\x05corrupt")
        sink = ListTraceSink()
        bus = ProbeBus(trace=sink)
        with use_probes(bus):
            assert cache.get(KEY) is None
        events = [r for r in sink.records
                  if r["event"] == "cache.corrupt_entry"]
        assert len(events) == 1
        assert events[0]["key"] == KEY
        assert events[0]["error"] == "UnpicklingError"

    def test_no_trace_event_without_sink(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        cache.path_for(KEY).write_bytes(b"nope")
        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        assert bus.events_emitted == 0

    def test_intact_entry_still_round_trips(self, cache):
        payload = {"result": {"rows": [[1, 2]]}, "metrics": {"counters": {}}}
        cache.put(KEY, payload)
        loaded = cache.get(KEY)
        assert loaded == payload
        assert pickle.dumps(loaded)  # payload survived as picklable data

    def test_missing_entry_is_a_silent_miss(self, cache):
        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        # plain miss: no corruption accounting
        assert "cache.corrupt_entries" not in bus.counters
