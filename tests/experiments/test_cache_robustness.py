"""Corrupt/truncated cache entries must degrade to misses, not errors."""

import pickle

import pytest

from repro.experiments.cache import ResultCache
from repro.obs import ProbeBus, use_probes
from repro.obs.probes import ListTraceSink


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


KEY = "ab" + "0" * 62


class TestCorruptEntries:
    def test_truncated_pickle_is_a_miss_and_is_removed(self, cache):
        cache.put(KEY, {"result": "payload", "metrics": {}})
        path = cache.path_for(KEY)
        intact = path.read_bytes()
        path.write_bytes(intact[: len(intact) // 2])  # truncate mid-stream

        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        assert not path.exists()  # broken entry removed
        assert bus.counters["cache.corrupt_entries"] == 1

    def test_garbage_bytes_are_a_miss(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a pickle")
        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        assert bus.counters["cache.corrupt_entries"] == 1

    def test_empty_file_is_a_miss(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")
        with use_probes(ProbeBus()):
            assert cache.get(KEY) is None
        assert not path.exists()

    def test_overwrite_after_corruption_recovers(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        path = cache.path_for(KEY)
        path.write_bytes(path.read_bytes()[:10])
        with use_probes(ProbeBus()):
            assert cache.get(KEY) is None
        cache.put(KEY, {"result": 2, "metrics": {}})
        assert cache.get(KEY) == {"result": 2, "metrics": {}}

    def test_trace_event_emitted_when_tracing(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        path = cache.path_for(KEY)
        path.write_bytes(b"\x80\x05corrupt")  # no envelope magic at all
        sink = ListTraceSink()
        bus = ProbeBus(trace=sink)
        with use_probes(bus):
            assert cache.get(KEY) is None
        events = [r for r in sink.records
                  if r["event"] == "cache.corrupt_entry"]
        assert len(events) == 1
        assert events[0]["key"] == KEY
        assert events[0]["error"] == "wrong_schema"

    def test_no_trace_event_without_sink(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        cache.path_for(KEY).write_bytes(b"nope")
        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        assert bus.events_emitted == 0

    def test_intact_entry_still_round_trips(self, cache):
        payload = {"result": {"rows": [[1, 2]]}, "metrics": {"counters": {}}}
        cache.put(KEY, payload)
        loaded = cache.get(KEY)
        assert loaded == payload
        assert pickle.dumps(loaded)  # payload survived as picklable data

    def test_missing_entry_is_a_silent_miss(self, cache):
        bus = ProbeBus()
        with use_probes(bus):
            assert cache.get(KEY) is None
        # plain miss: no corruption accounting
        assert "cache.corrupt_entries" not in bus.counters


class TestContainsAgreesWithGet:
    """``key in cache`` must never promise an entry ``get`` rejects."""

    def test_present_intact_entry(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        assert KEY in cache
        assert cache.get(KEY) is not None

    def test_absent_entry(self, cache):
        assert KEY not in cache

    def test_truncated_entry_not_contained(self, cache):
        cache.put(KEY, {"result": 1, "metrics": {}})
        path = cache.path_for(KEY)
        path.write_bytes(path.read_bytes()[:-8])
        assert KEY not in cache
        with use_probes(ProbeBus()):
            assert cache.get(KEY) is None

    def test_foreign_file_not_contained(self, cache):
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x80\x05legacy pre-envelope pickle")
        assert KEY not in cache

    def test_wrong_schema_dir_not_contained(self, cache):
        from repro.store.envelope import wrap

        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(wrap(b"payload", schema=999))
        assert KEY not in cache


class TestOrphanTmpSweep:
    def stale_tmp(self, cache, name="ab" + "1" * 62):
        import os

        sub = cache.root / f"v{2}" / name[:2]
        sub.mkdir(parents=True, exist_ok=True)
        tmp = sub / f"{name}.pkl.tmp.4242"
        tmp.write_bytes(b"half-written")
        os.utime(tmp, (1, 1))  # ancient
        return tmp

    def test_entries_sweeps_stale_tmp(self, cache):
        from repro.experiments.cache import CACHE_SCHEMA

        cache.put(KEY, {"result": 1, "metrics": {}})
        sub = cache.root / f"v{CACHE_SCHEMA}" / KEY[:2]
        tmp = sub / (KEY + ".pkl.tmp.4242")
        tmp.write_bytes(b"half")
        import os

        os.utime(tmp, (1, 1))
        listed = list(cache.entries())
        assert not tmp.exists()
        assert listed == [cache.path_for(KEY)]

    def test_entries_keeps_young_tmp(self, cache):
        from repro.experiments.cache import CACHE_SCHEMA

        sub = cache.root / f"v{CACHE_SCHEMA}" / "ab"
        sub.mkdir(parents=True, exist_ok=True)
        tmp = sub / (KEY + ".pkl.tmp.4242")
        tmp.write_bytes(b"live writer mid-rename")
        list(cache.entries())
        assert tmp.exists()  # inside the grace window: left alone

    def test_clear_sweeps_tmp_regardless_of_age(self, cache):
        from repro.experiments.cache import CACHE_SCHEMA

        cache.put(KEY, {"result": 1, "metrics": {}})
        sub = cache.root / f"v{CACHE_SCHEMA}" / "ab"
        tmp = sub / (KEY + ".pkl.tmp.4242")
        tmp.write_bytes(b"fresh but clear() means everything")
        assert cache.clear() == 1
        assert not tmp.exists()
        assert list(cache.entries()) == []


class TestDegradedStore:
    def break_writes(self, cache):
        """Make entry-directory creation fail (a file squats on v<N>)."""
        from repro.experiments.cache import CACHE_SCHEMA

        (cache.root / f"v{CACHE_SCHEMA}").write_text("")

    def test_failed_put_degrades_with_one_warning(self, cache):
        import warnings as warnings_mod

        cache.root.mkdir(parents=True, exist_ok=True)
        self.break_writes(cache)
        bus = ProbeBus()
        with use_probes(bus):
            with warnings_mod.catch_warnings(record=True) as caught:
                warnings_mod.simplefilter("always")
                cache.put(KEY, {"result": 1, "metrics": {}})
                cache.put("cd" + "0" * 62, {"result": 2, "metrics": {}})
        degraded = [w for w in caught if "degraded" in str(w.message)]
        assert len(degraded) == 1  # warned once, not per put
        assert cache.degraded
        assert bus.counters["store.put_errors"] == 1  # second put skipped
        assert bus.gauges["store.degraded"].last == 1

    def test_degraded_cache_still_serves_reads(self, cache):
        import warnings as warnings_mod

        cache.put(KEY, {"result": 1, "metrics": {}})
        entry = cache.path_for(KEY)
        entry_bytes = entry.read_bytes()
        cache.clear()
        for sub in sorted(cache.root.glob("v*/*"), reverse=True):
            sub.rmdir()
        for versioned in cache.root.glob("v*"):
            versioned.rmdir()
        self.break_writes(cache)
        with use_probes(ProbeBus()):
            with warnings_mod.catch_warnings(record=True):
                warnings_mod.simplefilter("always")
                cache.put(KEY, {"result": 2, "metrics": {}})
        assert cache.degraded
        # restore the tree: reads keep working on a degraded cache
        (cache.root / "v2").unlink()
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(entry_bytes)
        assert cache.get(KEY) == {"result": 1, "metrics": {}}


class TestOverwriteAudit:
    def test_replacing_an_entry_is_audited(self, cache):
        bus = ProbeBus()
        with use_probes(bus):
            cache.put(KEY, {"result": 1, "metrics": {}})
            assert "store.put_overwrites" not in bus.counters
            cache.put(KEY, {"result": 2, "metrics": {}})
        assert bus.counters["store.put_overwrites"] == 1
        assert cache.get(KEY) == {"result": 2, "metrics": {}}

    def test_overwrite_event_when_tracing(self, cache):
        sink = ListTraceSink()
        bus = ProbeBus(trace=sink)
        with use_probes(bus):
            cache.put(KEY, {"result": 1, "metrics": {}})
            cache.put(KEY, {"result": 2, "metrics": {}})
        events = [r for r in sink.records
                  if r["event"] == "store.put_overwrite"]
        assert len(events) == 1
        assert events[0]["key"] == KEY
