"""Tests for the ``repro.api`` facade."""

import json

import pytest

import repro.api as api
from repro.experiments import REGISTRY
from repro.experiments.cache import ResultCache

MICRO = api.default_settings(
    memory_bytes=4 << 20,
    windows=1,
    benchmarks=("gemsFDTD", "omnetpp"),
    rows_per_ar=32,
    seed=3,
)


class TestFacade:
    def test_list_experiments_matches_registry(self):
        assert api.list_experiments() == list(REGISTRY)

    def test_get_experiment_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment 'nope'"):
            api.get_experiment("nope")

    def test_settings_helpers(self):
        assert api.quick_settings().memory_bytes == 16 << 20
        assert api.default_settings().memory_bytes == 32 << 20
        assert api.quick_settings(seed=9).seed == 9

    def test_run_experiment(self, tmp_path):
        result = api.run_experiment("sram", MICRO, cache=True,
                                    cache_dir=tmp_path, jobs=1)
        assert result.experiment_id == "sram"
        parsed = json.loads(result.to_json())
        assert parsed["headers"] == result.headers
        assert result.to_csv().splitlines()[0].startswith("design")

    def test_shared_runner_accumulates_manifest(self, tmp_path):
        runner = api.make_runner(jobs=1, cache=True, cache_dir=tmp_path)
        api.run_experiment("sram", MICRO, runner=runner)
        api.run_experiment("tab01", MICRO, runner=runner)
        ids = {entry["experiment_id"] for entry in runner.manifest}
        assert ids == {"sram", "tab01"}

    def test_make_runner_cache_modes(self, tmp_path):
        assert api.make_runner(cache=False).cache is None
        assert api.make_runner(cache=True, cache_dir=tmp_path).cache.root \
            == tmp_path
        store = ResultCache(tmp_path / "elsewhere")
        assert api.make_runner(cache=store).cache is store

    def test_run_experiment_uses_engine_cache(self, tmp_path):
        runner = api.make_runner(jobs=1, cache=True, cache_dir=tmp_path)
        api.run_experiment("fig17", MICRO, runner=runner)
        warm = api.make_runner(jobs=1, cache=True, cache_dir=tmp_path)
        api.run_experiment("fig17", MICRO, runner=warm)
        assert warm.stats.cache_hits == len(MICRO.benchmarks)
        assert warm.stats.cache_misses == 0
