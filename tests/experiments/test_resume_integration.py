"""Kill-and-resume acceptance: real simulations, real process death.

The headline promise of the run lifecycle: a run killed mid-plan (here
via an injected ``abort-run``/``kill`` fault) resumes from its journal
and produces a result byte-identical to a run that was never disturbed.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import RunRequest, execute, runner_for
from repro.experiments.runner import ExperimentSettings
from repro.obs import ProbeBus

from tests.experiments.test_metrics_capture import _deterministic

REPO_ROOT = Path(__file__).resolve().parents[2]

MICRO_KWARGS = dict(
    memory_bytes=8 << 20, windows=1, benchmarks=("mcf", "gcc")
)
MICRO = ExperimentSettings.quick(**MICRO_KWARGS)

ABORT_SCRIPT = """\
import sys
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import RunRequest, execute
from repro.experiments.runner import ExperimentSettings

settings = ExperimentSettings.quick(
    memory_bytes=8 << 20, windows=1, benchmarks=("mcf", "gcc"))
execute(RunRequest(
    "fig17", settings=settings, jobs=1, cache_dir=sys.argv[1],
    run_id="itest-abort",
    faults=FaultPlan((FaultSpec(job_index=0, kind="abort-run"),)),
))
raise SystemExit("unreachable: the abort-run fault must SIGKILL us")
"""


def run_fig17(cache_dir, **request_overrides):
    request = RunRequest(
        "fig17", settings=MICRO, cache_dir=str(cache_dir),
        **request_overrides,
    )
    runner = runner_for(request)
    return execute(request, runner=runner), runner


class TestKillAndResume:
    def test_sigkilled_run_resumes_bit_identical(self, tmp_path):
        """SIGKILL the process after the first job lands; resuming the
        journaled run replays it and the final result matches an
        undisturbed run in a pristine cache, byte for byte."""
        cache_dir = tmp_path / "killed-cache"
        proc = subprocess.run(
            [sys.executable, "-c", ABORT_SCRIPT, str(cache_dir)],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        # the journal survived the kill and records the completed job
        journal = cache_dir / "journal" / "itest-abort.jsonl"
        assert journal.exists()
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert [r["status"] for r in lines[1:]] == ["done"]

        bus = ProbeBus()
        resumed, runner = run_fig17(
            cache_dir, jobs=1, resume="itest-abort", probes=bus
        )
        counters = bus.snapshot()["counters"]
        assert counters["engine.journal_replays"] == 1
        assert counters["engine.journal_resumes"] == 1
        assert runner.stats.journal_replays == 1
        assert not runner.failures

        reference, pristine = run_fig17(tmp_path / "pristine-cache", jobs=1)
        assert resumed.to_json() == reference.to_json()
        # the metrics manifest matches too, minus wall-clock phases
        assert (_deterministic(runner.metrics_manifest())
                == _deterministic(pristine.metrics_manifest()))

        replay_flags = [e.get("journal_replay") for e in runner.manifest]
        assert replay_flags.count(True) == 1

    def test_pool_worker_kill_is_survived(self, tmp_path):
        """A worker SIGKILLed mid-job on a two-process pool: the engine
        recycles the pool, re-runs the victim, and the result still
        matches an undisturbed serial run."""
        result, runner = run_fig17(
            tmp_path / "chaos-cache", jobs=2,
            faults=FaultPlan((FaultSpec(job_index=0, kind="kill",
                                        times=1),)),
        )
        assert not runner.failures
        assert runner.stats.worker_crashes >= 1
        assert runner.stats.faults_injected >= 1

        reference, _ = run_fig17(tmp_path / "pristine-cache", jobs=1)
        assert result.to_json() == reference.to_json()
